"""Synthesis problem specification and result types."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..chain.chain import BooleanChain
from ..runtime.errors import BudgetExceeded
from ..truthtable.operations import NONTRIVIAL_BINARY_OPS
from ..truthtable.table import TruthTable

__all__ = [
    "SynthesisSpec",
    "SynthesisResult",
    "SynthesisStats",
    "SynthStats",
    "Deadline",
]


class Deadline:
    """Cooperative wall-clock budget shared across a synthesis run.

    Pure-Python algorithms cannot be preempted safely, so all long loops
    poll :meth:`check`.  A ``limit`` of ``None`` never expires.

    Cooperation is best-effort: a loop that forgets to poll runs past
    its budget, which is why the fault-tolerant runtime
    (:mod:`repro.runtime`) additionally enforces *hard* timeouts by
    killing worker processes.
    """

    __slots__ = ("_limit", "_start", "_calls")

    def __init__(self, limit_seconds: float | None) -> None:
        self._limit = limit_seconds
        self._start = time.perf_counter()
        self._calls = 0

    @property
    def limit(self) -> float | None:
        """The armed budget in seconds (``None`` = unlimited)."""
        return self._limit

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    def remaining(self) -> float | None:
        """Seconds left in the budget (``None`` = unlimited, min 0.0)."""
        if self._limit is None:
            return None
        return max(0.0, self._limit - self.elapsed)

    def subdeadline(self, limit_seconds: float | None = None) -> "Deadline":
        """A nested deadline never outliving its parent.

        The child is armed with ``min(limit_seconds, remaining())``;
        either bound may be ``None`` (unlimited).  Sub-deadlines nest
        arbitrarily, so a per-engine or per-prime-block budget can be
        carved out of a per-instance budget which is itself carved out
        of a suite budget.
        """
        remaining = self.remaining()
        if remaining is None:
            child = limit_seconds
        elif limit_seconds is None:
            child = remaining
        else:
            child = min(limit_seconds, remaining)
        return Deadline(child)

    def expired(self) -> bool:
        """True once the budget is exhausted."""
        return self._limit is not None and self.elapsed >= self._limit

    def check(self, every: int = 1) -> None:
        """Raise :class:`BudgetExceeded` once the budget is exhausted.

        ``every`` gives hot loops a cheap poll stride: the clock is
        sampled only on every ``every``-th call, so a tight inner loop
        can call ``deadline.check(every=64)`` per iteration without
        paying a ``perf_counter()`` syscall each time.
        """
        if every > 1:
            self._calls += 1
            if self._calls % every:
                return
        if self.expired():
            raise BudgetExceeded(
                f"synthesis exceeded {self._limit:.3f}s budget",
                budget=self._limit,
                elapsed=self.elapsed,
            )


@dataclass
class SynthesisSpec:
    """What to synthesize and under which constraints.

    Parameters
    ----------
    function:
        The (first) target function.  Single-output call sites keep
        passing exactly this; it is always ``functions[0]``.
    functions:
        The full output vector.  Every output shares the chain's
        primary inputs (all tables must have the same arity); interior
        gates may be shared between outputs.  When omitted it defaults
        to ``(function,)``, so existing single-output specs are
        untouched.
    operators:
        Allowed 2-input operator codes (default: the ten operators that
        depend on both inputs).
    max_gates:
        Hard cap on the number of gates tried before giving up.
    timeout:
        Wall-clock budget in seconds (None = unlimited).
    all_solutions:
        When True (the paper's mode) every optimal chain is returned;
        when False the search stops at the first chain.
    verify:
        Run the STP circuit AllSAT verification (Section III-C) on each
        candidate before accepting it.
    max_solutions:
        Safety cap on the size of the returned solution set.
    canonicalize_dont_cares:
        Zero unobservable LUT rows so behaviourally identical chains
        have one representative (the pipeline's dedup contract).
    npn_canonicalize:
        Run the search on the NPN class representative and map the
        solutions back through the inverse transform.  Off by default;
        when several targets share an NPN class this makes the
        cross-call factorization memo hit across all of them.
    min_gates:
        Smallest gate count worth searching (default 0 = no floor).
        Gate counts below it are *skipped*, so only pass sizes already
        proven infeasible for this exact function — e.g. the
        :meth:`~repro.store.ChainStore.min_feasible_gates` negative
        cache; a wrong floor silently yields non-minimal chains.
    """

    function: TruthTable | None = None
    operators: tuple[int, ...] = NONTRIVIAL_BINARY_OPS
    max_gates: int | None = None
    min_gates: int = 0
    timeout: float | None = None
    all_solutions: bool = True
    verify: bool = True
    max_solutions: int = 10_000
    canonicalize_dont_cares: bool = True
    npn_canonicalize: bool = False
    functions: tuple[TruthTable, ...] = ()

    def __post_init__(self) -> None:
        if self.function is None and not self.functions:
            raise ValueError("spec needs a function or a functions vector")
        if not self.functions:
            self.functions = (self.function,)
        else:
            self.functions = tuple(self.functions)
            if self.function is None:
                self.function = self.functions[0]
            elif self.function != self.functions[0]:
                raise ValueError(
                    "function must be functions[0] when both are given"
                )
        arity = self.functions[0].num_vars
        for table in self.functions:
            if table.num_vars != arity:
                raise ValueError(
                    "all outputs must share one primary-input space"
                )
        for code in self.operators:
            if not 0 <= code <= 0xF:
                raise ValueError(f"bad operator code {code}")

    @property
    def num_outputs(self) -> int:
        """Number of target outputs."""
        return len(self.functions)

    @property
    def is_multi_output(self) -> bool:
        """True for specs with more than one output."""
        return len(self.functions) > 1

    def output_spec(self, index: int) -> "SynthesisSpec":
        """The single-output spec for output ``index`` (same knobs)."""
        from dataclasses import replace

        return replace(
            self,
            function=self.functions[index],
            functions=(self.functions[index],),
        )

    def effective_max_gates(self) -> int:
        """Default gate cap: generous for the support size.

        Multi-output specs sum the per-output caps — the shared chain
        can never legitimately need more than the outputs built
        separately.
        """
        if self.max_gates is not None:
            return self.max_gates
        if self.is_multi_output:
            return sum(
                max(3 * table.support_size(), 7)
                for table in self.functions
            )
        support = self.function.support_size()
        return max(3 * support, 7)


@dataclass
class SynthesisStats:
    """Search-effort counters filled in by the synthesizer.

    Beyond the paper's raw search counters, the pipeline refactor adds
    per-stage wall-clock timers (``stage_seconds``, keyed by stage
    name) and per-cache hit/miss counters (``cache_hits`` /
    ``cache_misses``, keyed by cache name: ``npn``, ``topology``,
    ``factorization``).  The bit-parallel kernel layer contributes
    ``kernel_calls`` / ``kernel_seconds`` (keyed by kernel name, folded
    from :data:`repro.kernels.KERNEL_STATS` per pipeline run; only the
    coarse kernels are timed).  Everything is plain data, so stats
    survive the pickle boundary of isolated workers.
    """

    fences_examined: int = 0
    dags_examined: int = 0
    dags_pruned_dsd: int = 0
    candidates_generated: int = 0
    candidates_verified: int = 0
    verification_failures: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    cache_hits: dict[str, int] = field(default_factory=dict)
    cache_misses: dict[str, int] = field(default_factory=dict)
    kernel_calls: dict[str, int] = field(default_factory=dict)
    kernel_seconds: dict[str, float] = field(default_factory=dict)

    def add_stage_time(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time under a pipeline stage name."""
        self.stage_seconds[stage] = (
            self.stage_seconds.get(stage, 0.0) + seconds
        )

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one pipeline stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage_time(name, time.perf_counter() - start)

    def record_cache(self, cache: str, hit: bool, count: int = 1) -> None:
        """Count a cache hit or miss under a cache name."""
        bucket = self.cache_hits if hit else self.cache_misses
        bucket[cache] = bucket.get(cache, 0) + count

    def record_kernels(
        self, calls: dict[str, int], seconds: dict[str, float]
    ) -> None:
        """Fold a bit-kernel counter delta (see ``repro.kernels.stats``)."""
        for name, count in calls.items():
            self.kernel_calls[name] = (
                self.kernel_calls.get(name, 0) + count
            )
        for name, secs in seconds.items():
            self.kernel_seconds[name] = (
                self.kernel_seconds.get(name, 0.0) + secs
            )

    def merge(self, other: "SynthesisStats") -> None:
        """Accumulate counters from a sub-run."""
        self.fences_examined += other.fences_examined
        self.dags_examined += other.dags_examined
        self.dags_pruned_dsd += other.dags_pruned_dsd
        self.candidates_generated += other.candidates_generated
        self.candidates_verified += other.candidates_verified
        self.verification_failures += other.verification_failures
        for stage, seconds in other.stage_seconds.items():
            self.add_stage_time(stage, seconds)
        for cache, count in other.cache_hits.items():
            self.record_cache(cache, True, count)
        for cache, count in other.cache_misses.items():
            self.record_cache(cache, False, count)
        self.record_kernels(other.kernel_calls, other.kernel_seconds)

    def to_record(self) -> dict:
        """JSON-safe summary for checkpoints and ``--stats`` output."""
        return {
            "fences_examined": self.fences_examined,
            "dags_examined": self.dags_examined,
            "dags_pruned_dsd": self.dags_pruned_dsd,
            "candidates_generated": self.candidates_generated,
            "candidates_verified": self.candidates_verified,
            "verification_failures": self.verification_failures,
            "stage_seconds": {
                k: round(v, 6) for k, v in self.stage_seconds.items()
            },
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "kernel_calls": dict(self.kernel_calls),
            "kernel_seconds": {
                k: round(v, 6) for k, v in self.kernel_seconds.items()
            },
        }


#: Short alias used throughout the pipeline layer.
SynthStats = SynthesisStats


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    spec: SynthesisSpec
    chains: list[BooleanChain]
    num_gates: int
    runtime: float
    stats: SynthesisStats = field(default_factory=SynthesisStats)

    @property
    def num_solutions(self) -> int:
        """Size of the optimal-solution set."""
        return len(self.chains)

    @property
    def best(self) -> BooleanChain:
        """The first optimal chain (deterministic order)."""
        if not self.chains:
            raise ValueError("no solutions")
        return self.chains[0]

    def mean_time_per_solution(self) -> float:
        """The paper's per-solution mean (Total / number)."""
        if not self.chains:
            return self.runtime
        return self.runtime / len(self.chains)
