"""The STP synthesis pipeline as composable stages.

The paper's algorithm (Section III) is a fixed sequence of concerns;
this module expresses each as a stage function over a shared
:class:`PipelineState` and :class:`~repro.core.context.SynthesisContext`:

1. :func:`normalize_stage` — trivial-chain check and projection onto
   the functional support;
2. :func:`canonicalize_stage` — optional NPN canonicalization so the
   search runs on the class representative (memoized via the cache);
3. :func:`search_stage` — the bottom-up gate-count loop: cached
   fence/pDAG topology families (Section III-A), operator assignment
   by STP matrix factorization (Section III-B), AllSAT verification
   (Section III-C), and polarity expansion of the normal-form
   solutions;
4. :func:`finalize_stage` — inverse-NPN rewrite, lifting back to the
   original input space, don't-care canonicalization, and dedup.

Stages communicate only through the state object and record their
wall-clock cost under per-stage names in ``ctx.stats.stage_seconds``,
so entry points can report exactly where a run's budget went.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator

from ..chain.chain import BooleanChain
from ..chain.transform import (
    flip_signal,
    lift_chain,
    npn_transform_chain,
    shrink_to_support,
    trivial_chain,
)
from ..kernels import KERNEL_STATS
from ..runtime.errors import SynthesisInfeasible
from ..topology.dag import DagTopology
from ..truthtable.dsd import feasible_top_splits
from ..truthtable.npn import NPNTransform
from ..truthtable.table import TruthTable, projection
from .circuit_sat import verify_chain
from .context import SynthesisContext
from .factorization import FactorizationEngine
from .sizebound import min_gates_lower_bound
from .spec import Deadline, SynthesisResult, SynthesisSpec, SynthesisStats

__all__ = [
    "PipelineState",
    "run_pipeline",
    "normalize_stage",
    "canonicalize_stage",
    "search_stage",
    "finalize_stage",
]

#: Cross-run cache of size lower bounds, keyed by (table bits, arity).
_BOUND_CACHE: dict[tuple[int, int], int] = {}

#: Cross-run cache of feasible disjoint top splits, keyed by
#: (table bits, arity, operator tuple) — see :func:`feasible_top_splits`.
_SPLIT_CACHE: dict[tuple[int, int, tuple[int, ...]], frozenset[int]] = {}

#: Per-pDAG static structure (reachable-PI cones, cone gate counts, PI
#: bitmasks, cone shape terms, private-tree flags), shared by every
#: target searched over the same topology.
_DAG_INFO: dict[DagTopology, tuple] = {}

#: Global interning tables for recursive shape terms and child
#: structure descriptors: the engine-wide memos key on the interned
#: small ints instead of the nested tuples, so a probe hashes one
#: machine word.  Ids are process-stable names — every engine's memo
#: dicts are separate, so sharing the tables is safe.
_SHAPE_IDS: dict = {}
_STRUCT_IDS: dict = {}


def _intern(table: dict, term) -> int:
    sid = table.get(term)
    if sid is None:
        sid = table[term] = len(table)
    return sid

#: Re-entrancy depth of :func:`run_pipeline` in this process.  Nested
#: runs (an engine adapter delegating to the pipeline, say) must not
#: fold the kernel-counter delta twice, so only the outermost call —
#: the one returning to depth 0 — owns the window between its snapshot
#: and the global counters.
_PIPELINE_DEPTH = 0


@dataclass
class PipelineState:
    """Mutable state threaded through the pipeline stages.

    ``target`` is the function the search actually runs on — the
    support-local projection, or its NPN class representative when the
    spec asks for it; ``chains`` always computes ``target`` until
    :func:`finalize_stage` rewrites them back over the original inputs.
    """

    spec: SynthesisSpec
    trivial: BooleanChain | None = None
    local: TruthTable | None = None
    support: tuple[int, ...] = ()
    target: TruthTable | None = None
    npn_transform: NPNTransform | None = None
    chains: list[BooleanChain] = field(default_factory=list)
    num_gates: int = 0


def run_pipeline(
    spec: SynthesisSpec, ctx: SynthesisContext | None = None
) -> SynthesisResult:
    """Run the full stage sequence for one synthesis problem."""
    global _PIPELINE_DEPTH
    if ctx is None:
        ctx = SynthesisContext.create(timeout=spec.timeout)
    start = time.perf_counter()
    kernel_snapshot = KERNEL_STATS.snapshot()
    _PIPELINE_DEPTH += 1
    try:
        state = normalize_stage(spec, ctx)
        if state.trivial is not None:
            return SynthesisResult(
                spec,
                [state.trivial],
                0,
                time.perf_counter() - start,
                ctx.stats,
            )
        canonicalize_stage(state, ctx)
        search_stage(state, ctx)
        chains = finalize_stage(state, ctx)
        return SynthesisResult(
            spec,
            chains,
            state.num_gates,
            time.perf_counter() - start,
            ctx.stats,
        )
    finally:
        _PIPELINE_DEPTH -= 1
        if _PIPELINE_DEPTH == 0:
            ctx.stats.record_kernels(*KERNEL_STATS.since(kernel_snapshot))


# ----------------------------------------------------------------------
# stage 1: normalize / support-shrink
# ----------------------------------------------------------------------
def normalize_stage(
    spec: SynthesisSpec, ctx: SynthesisContext
) -> PipelineState:
    """Trivial-chain check and projection onto the functional support."""
    state = PipelineState(spec)
    with ctx.stage("normalize"):
        state.trivial = trivial_chain(spec.function)
        if state.trivial is None:
            state.local, state.support = shrink_to_support(spec.function)
            state.target = state.local
    return state


# ----------------------------------------------------------------------
# stage 2: NPN canonicalize
# ----------------------------------------------------------------------
def canonicalize_stage(
    state: PipelineState, ctx: SynthesisContext
) -> None:
    """Swap the target for its NPN class representative (optional).

    Gate counts and solution-set sizes are NPN-invariant, so searching
    on the representative is exact; the payoff is that every orbit
    member shares the representative's factorization memo and search
    effort.  The transform is remembered for :func:`finalize_stage`.
    """
    if not state.spec.npn_canonicalize:
        return
    with ctx.stage("canonicalize"):
        rep, transform = ctx.cache.npn_canonical(
            state.local, stats=ctx.stats
        )
        state.target = rep
        state.npn_transform = transform


# ----------------------------------------------------------------------
# stage 3: topology enumeration + factorization + verification
# ----------------------------------------------------------------------
def search_stage(state: PipelineState, ctx: SynthesisContext) -> None:
    """Find all optimal chains for the target at the first feasible size.

    Raises :class:`~repro.runtime.errors.SynthesisInfeasible` when the
    gate cap is exhausted.
    """
    spec = state.spec
    target = state.target
    s = target.num_vars
    engine = ctx.cache.factorization_engine(
        s,
        spec.operators,
        spec.max_solutions,
        deadline=ctx.deadline,
        stats=ctx.stats,
    )
    split_profile = _top_split_profile(target, spec)
    lo = max(1, s - 1, spec.min_gates)
    for r in range(lo, spec.effective_max_gates() + 1):
        normal = _search_at_size(
            target, r, engine, spec, ctx, split_profile
        )
        if normal:
            if spec.all_solutions:
                with ctx.stage("expand"):
                    state.chains = _expand_polarities(
                        normal, target, spec, ctx.deadline
                    )
            else:
                state.chains = normal
            state.num_gates = r
            return
    raise SynthesisInfeasible(
        f"no chain with up to {spec.effective_max_gates()} gates "
        f"found for 0x{spec.function.to_hex()}"
    )


def _top_split_profile(
    target: TruthTable, spec: SynthesisSpec
) -> frozenset[int]:
    """Memoized DSD top-split profile of the search target."""
    ops = tuple(spec.operators)
    key = (target.bits, target.num_vars, ops)
    profile = _SPLIT_CACHE.get(key)
    if profile is None:
        profile = feasible_top_splits(target, ops)
        _SPLIT_CACHE[key] = profile
    return profile


def _search_at_size(
    f: TruthTable,
    r: int,
    engine: FactorizationEngine,
    spec: SynthesisSpec,
    ctx: SynthesisContext,
    split_profile: frozenset[int] | None = None,
) -> list[BooleanChain]:
    """All *normal-form* chains with exactly ``r`` gates (empty if none).

    The search pins every internal non-output signal to a function that
    is 0 on the all-zero input (the canonical polarity of the
    factorization engine).  Each polarity orbit has exactly one normal
    member, so the full solution set is the normal set expanded by all
    ``2^(r-1)`` internal-signal complementations — the search can
    therefore stop well before the solution cap.
    """
    stats = ctx.stats
    deadline = ctx.deadline
    s = f.num_vars
    with ctx.stage("topology"):
        families = ctx.cache.topology_families(
            r, s, require_all_pis=True, deadline=deadline, stats=stats
        )
    normal_solutions: list[BooleanChain] = []
    seen: set[tuple] = set()
    normal_cap = max(1, -(-spec.max_solutions // (1 << max(0, r - 1))))
    with ctx.stage("search"):
        for fence, dags in families:
            stats.fences_examined += 1
            for dag in dags:
                stats.dags_examined += 1
                deadline.check()
                for chain in assign_operators(
                    dag,
                    f,
                    engine,
                    deadline,
                    stats=stats,
                    split_profile=split_profile,
                ):
                    stats.candidates_generated += 1
                    if spec.verify:
                        stats.candidates_verified += 1
                        if not verify_chain(chain, f):
                            stats.verification_failures += 1
                            continue
                    key = chain.signature()
                    if key in seen:
                        continue
                    seen.add(key)
                    normal_solutions.append(chain)
                    if not spec.all_solutions:
                        return normal_solutions
                    if len(normal_solutions) >= normal_cap:
                        return normal_solutions
    return normal_solutions


def _expand_polarities(
    normal_solutions: list[BooleanChain],
    f: TruthTable,
    spec: SynthesisSpec,
    deadline: Deadline,
) -> list[BooleanChain]:
    """Blow the normal-form solutions up to the full optimal set by
    complementing internal (non-output) signals."""
    expanded: list[BooleanChain] = []
    seen: set[tuple] = set()
    for base in normal_solutions:
        output_signal = base.outputs[0][0]
        flippable = [
            base.num_inputs + i
            for i in range(base.num_gates)
            if base.num_inputs + i != output_signal
        ]
        for combo in range(1 << len(flippable)):
            deadline.check(every=32)
            variant = base
            for j, signal in enumerate(flippable):
                if (combo >> j) & 1:
                    variant = flip_signal(variant, signal)
            if combo and variant.simulate_output() != f:
                raise AssertionError(
                    "polarity variant changed the function"
                )
            if spec.canonicalize_dont_cares:
                variant = canonicalize_dont_cares(variant)
            key = variant.signature()
            if key in seen:
                continue
            seen.add(key)
            expanded.append(variant)
            if len(expanded) >= spec.max_solutions:
                return expanded
    return expanded


def _dag_info(dag: DagTopology) -> tuple:
    """Static per-topology structure, cached across targets and runs.

    Returns ``(cones, cone_gates, cone_masks, shape_ids, tree_flags,
    tsizes, priv, struct_ids)``: per-signal reachable-PI cones (sorted
    tuples), cone gate counts, cone PI bitmasks, *interned* recursive
    shape terms (a PI is its index, a gate is the pair of its fanin
    terms — structurally equal cones in different pDAGs produce equal
    terms, interned to one small int each, keying the engine's
    cross-topology ``tree_memo``), per-gate *private tree* flags
    (every gate strictly below is consumed exactly once, by a gate
    inside the cone), unfolded tree sizes, per-gate *private sub-DAG*
    descriptors, and per-gate interned child-structure ids (the
    engine-wide verdict/group memo key components).

    Every non-tree gate gets ``priv[i] = (sub_fanins, cone_pis,
    gate_list, private)`` — the cone relabeled as a standalone pDAG
    (PIs in sorted-cone order, gates in topological order), the global
    PI tuple, the global gate signals, and whether the cone is
    *private*: every gate strictly below the top feeds only gates
    inside the cone, making the cone's solution set independent of the
    surrounding pDAG.  Private cones key the engine's exact
    ``cone_memo`` solution sets on the relabeled structure plus the
    *localized* demand, collapsing isomorphic subproblems across
    sibling pDAGs, fences and targets; the descriptor of a shared
    (non-private) cone identifies the child's structure-plus-embedding
    in the engine-level verdict and group memo keys.
    """
    info = _DAG_INFO.get(dag)
    if info is None:
        n = dag.num_pis
        cone_sets: list[frozenset[int]] = [
            frozenset((i,)) for i in range(n)
        ]
        gate_sets: list[frozenset[int]] = [frozenset() for _ in range(n)]
        shapes: list = list(range(n))
        tsizes: list[int] = [0] * n
        consumers: dict[int, list[int]] = {}
        for i, (a, b) in enumerate(dag.fanins):
            cone_sets.append(cone_sets[a] | cone_sets[b])
            gate_sets.append(gate_sets[a] | gate_sets[b] | {n + i})
            shapes.append((shapes[a], shapes[b]))
            tsizes.append(1 + tsizes[a] + tsizes[b])
            consumers.setdefault(a, []).append(n + i)
            consumers.setdefault(b, []).append(n + i)
        num_nodes = len(dag.fanins)
        tree_flags = []
        priv: list[tuple | None] = []
        cones = tuple(tuple(sorted(c)) for c in cone_sets)
        for i in range(num_nodes):
            sig = n + i
            gates = gate_sets[sig]
            tree = all(
                len(consumers.get(g, ())) == 1
                and consumers[g][0] in gates
                for g in gates
                if g != sig
            )
            tree_flags.append(tree)
            sub = None
            if not tree:
                private = len(gates) < num_nodes and all(
                    all(c in gates for c in consumers.get(g, ()))
                    for g in gates
                    if g != sig
                )
                cone_pis = cones[sig]
                gate_list = sorted(gates)
                relabel = {p: j for j, p in enumerate(cone_pis)}
                for j, g in enumerate(gate_list):
                    relabel[g] = len(cone_pis) + j
                sub_fanins = tuple(
                    (
                        relabel[dag.fanins[g - n][0]],
                        relabel[dag.fanins[g - n][1]],
                    )
                    for g in gate_list
                )
                sub = (sub_fanins, cone_pis, tuple(gate_list), private)
            priv.append(sub)
        cone_gates = tuple(len(g) for g in gate_sets)
        cone_masks = tuple(sum(1 << v for v in c) for c in cones)
        # Intern the nested terms once per topology: the search keys
        # its engine-wide memos millions of times per run, and hashing
        # a small int beats re-walking a recursive tuple every probe.
        shape_ids = tuple(_intern(_SHAPE_IDS, s) for s in shapes)
        struct_ids = []
        for i in range(num_nodes):
            pv = priv[i]
            if pv is not None:
                # Structure plus PI embedding: the same relabeled
                # sub-DAG over different PI tuples localizes a global
                # demand differently, so the embedding is part of the
                # child-verdict key.
                term = (pv[0], pv[1])
            else:
                term = (shapes[n + i], cone_gates[n + i], tree_flags[i])
            struct_ids.append(_intern(_STRUCT_IDS, term))
        info = (
            cones,
            cone_gates,
            cone_masks,
            shape_ids,
            tuple(tree_flags),
            tuple(tsizes),
            tuple(priv),
            tuple(struct_ids),
        )
        _DAG_INFO[dag] = info
    return info


#: Standalone topologies for private cones, keyed on the relabeled
#: fanin tuple (the PI count is implied by the smallest fanin labels).
_SUBDAG_CACHE: dict[tuple, DagTopology] = {}


def _subdag_topology(
    sub_fanins: tuple[tuple[int, int], ...], n_loc: int
) -> DagTopology:
    key = (n_loc, sub_fanins)
    dag = _SUBDAG_CACHE.get(key)
    if dag is None:
        levels: list[int] = []
        depth = [0] * n_loc
        for a, b in sub_fanins:
            lvl = max(depth[a], depth[b]) + 1
            depth.append(lvl)
            while len(levels) < lvl:
                levels.append(0)
            levels[lvl - 1] += 1
        dag = DagTopology(
            num_pis=n_loc, fanins=sub_fanins, fence=tuple(levels)
        )
        _SUBDAG_CACHE[key] = dag
    return dag


def _solve_subdag(
    sub_fanins: tuple[tuple[int, int], ...],
    n_loc: int,
    bits: int,
    engine: FactorizationEngine,
    deadline: Deadline,
) -> tuple:
    """Complete op-vector solution set of a private cone.

    The cone, relabeled as a standalone pDAG over its own PIs, is
    searched by a recursive :func:`assign_operators` run on a pooled
    sub-engine; each solution is compressed to the tuple of operator
    codes in gate order.  Privacy guarantees the surrounding pDAG
    interacts with the cone only through the demand on its top signal,
    so the set is context-free and memoizable engine-wide.
    """
    sub = engine.for_num_vars(n_loc)
    dag = _subdag_topology(sub_fanins, n_loc)
    table = TruthTable(bits, n_loc)
    return tuple(
        tuple(g.op for g in chain.gates)
        for chain in assign_operators(dag, table, sub, deadline)
    )


def assign_operators(
    dag: DagTopology,
    f: TruthTable,
    engine: FactorizationEngine,
    deadline: Deadline,
    stats: SynthesisStats | None = None,
    split_profile: frozenset[int] | None = None,
) -> Iterator[BooleanChain]:
    """Section III-B: assign a 2-LUT to every pDAG vertex by repeated
    STP factorization, top node first.

    The branch tree runs over *child pairs*, not individual operators:
    once both children of a node are fixed the operator choices are
    mutually independent, so each engine result groups the codes per
    ``(g_a, g_b)`` pair and complete assignments multiply the per-node
    operator lists out at the leaves.  Demands are carried as packed
    truth-table ints end to end.

    Three sound prunes keep the backtracking shallow:

    * when the top node splits the PIs into disjoint cones covering all
      inputs, the split must be in the target's precomputed DSD
      ``split_profile`` (:func:`feasible_top_splits`) or the whole pDAG
      is rejected before any engine call;
    * a demanded function whose support exceeds the fanin cones cannot
      be factorized (checked inside the engine);
    * a demand of support ``s`` placed on a signal whose cone contains
      ``m`` gates is infeasible when ``m < s - 1`` (every 2-input chain
      needs at least ``support - 1`` gates).

    Sibling branches announce their children's upcoming queries through
    :meth:`~repro.core.factorization.FactorizationEngine.prefetch_pairs`
    so same-shape demands across the family run through one vectorized
    kernel pass instead of per-vertex scalar calls.
    """
    n = dag.num_pis
    num_nodes = dag.num_nodes
    (
        cones,
        cone_gates,
        cone_masks,
        shapes,
        tree_flags,
        tsizes,
        priv,
        struct_ids,
    ) = _dag_info(dag)
    top = dag.top_signal

    if split_profile is not None:
        ta, tb = dag.fanins[num_nodes - 1]
        am, bm = cone_masks[ta], cone_masks[tb]
        if (
            (am | bm) == (1 << n) - 1
            and not am & bm
            and am not in split_profile
        ):
            if stats is not None:
                stats.dags_pruned_dsd += 1
            return

    pi_bits = tuple(projection(i, n).bits for i in range(n))
    pairs = [
        engine.pair_info(cones[a], cones[b]) for a, b in dag.fanins
    ]
    demands: dict[int, int] = {top: f.bits}
    op_choices: list[tuple[int, ...] | None] = [None] * num_nodes
    tree_sols: dict[int, tuple] = {}
    cone_sols: dict[int, tuple] = {}

    def fixed_bits(signal: int) -> int | None:
        if signal < n:
            return pi_bits[signal]
        return demands.get(signal)

    def bound_of(demand_bits: int) -> int:
        key = (demand_bits, n)
        bound = _BOUND_CACHE.get(key)
        if bound is None:
            bound = min_gates_lower_bound(TruthTable(demand_bits, n))
            _BOUND_CACHE[key] = bound
        return bound

    def feasible(signal: int, demand_bits: int) -> bool:
        return bound_of(demand_bits) <= cone_gates[signal]

    def realizable(signal: int, demand_bits: int) -> bool:
        """Tree-relaxation realizability of a demand on a gate's cone.

        Sound necessary condition: sharing inside or below the cone
        only *adds* constraints, so checking the demand against the
        cone's unfolded tree skeleton — recursing through disjoint
        fanin splits only, conservatively accepting overlapping ones —
        can never reject a realizable demand.  Memoized on
        ``(shape term, demand)`` across pDAGs and fences, this kills
        the shared-spine branch explosion: most demand pairs emitted by
        a top-level shared-cone solve die here in one dict lookup
        instead of a full backtracking descent.
        """
        pr = pairs[signal - n]
        if pr.amask & pr.bmask:
            return True
        memo = engine.realize_memo
        key = (shapes[signal], demand_bits)
        hit = memo.get(key)
        if hit is not None:
            return hit
        a, b = dag.fanins[signal - n]
        ok = False
        if bound_of(demand_bits) <= tsizes[signal]:
            groups = engine.decompositions_pairs(
                demand_bits,
                pr,
                pi_bits[a] if a < n else None,
                pi_bits[b] if b < n else None,
            )
            for ga, gb, _ in groups:
                if (a < n or realizable(a, ga)) and (
                    b < n or realizable(b, gb)
                ):
                    ok = True
                    break
        memo[key] = ok
        return ok

    def pick_node(pending: set[int]) -> int:
        """Most-constrained-first ordering: nodes whose fanins are both
        fixed are pure consistency checks and fail fastest; prefer one
        fixed fanin next; fall back to the highest (topmost) node."""
        best = -1
        best_score = -1.0
        for node in pending:
            a, b = dag.fanins[node]
            score = 4 * (
                (a < n or a in demands) + (b < n or b in demands)
            ) + (node / num_nodes)
            if score > best_score:
                best_score = score
                best = node
        return best

    def prefetch_children(fresh_a, fresh_b, a: int, b: int) -> None:
        """Announce the child queries every sibling branch will issue
        through ``place_child`` (tree solves) or the realizability /
        descent path (free gate children).  Either way the child's own
        first factorization query has PI fanins pinned and gate fanins
        free, so the keys are exact and batch cleanly.  ``fresh_a`` /
        ``fresh_b`` hold only first-touch demands (no engine-wide
        verdict yet) — demands with a memoized verdict never query the
        engine again, and re-announcing them per parent context used to
        dominate the prefetch path's own cost."""
        queries = []
        for child, fresh in ((a, fresh_a), (b, fresh_b)):
            if not fresh or child < n:
                continue
            ca, cb = dag.fanins[child - n]
            pr = pairs[child - n]
            fca = pi_bits[ca] if ca < n else None
            fcb = pi_bits[cb] if cb < n else None
            for gbits in fresh:
                queries.append((gbits, pr, fca, fcb))
        if queries:
            engine.prefetch_pairs(queries)

    def solve_tree(signal: int, demand_bits: int) -> tuple:
        """All factorizations of a private tree cone, bottom-up.

        Returns a nested solution forest: one ``(ops, sub_a, sub_b)``
        entry per viable child pair, where ``sub_x`` is ``None`` for a
        PI fanin and a (non-empty) nested forest for a gate fanin.
        Memoized on ``(shape term, demand)`` in the engine's
        ``tree_memo``, so structurally equal cones across sibling pDAGs
        and successive fences resolve to one dict lookup.
        """
        memo = engine.tree_memo
        key = (shapes[signal], demand_bits)
        hit = memo.get(key)
        if hit is not None:
            return hit
        deadline.check(every=16)
        a, b = dag.fanins[signal - n]
        fa = pi_bits[a] if a < n else None
        fb = pi_bits[b] if b < n else None
        groups = engine.decompositions_pairs(
            demand_bits, pairs[signal - n], fa, fb
        )
        if len(groups) > 1:
            queries = []
            for ga, gb, _ in groups:
                for child, gbits in ((a, ga), (b, gb)):
                    # Memoized subtrees never re-enter the engine.
                    if child < n or (shapes[child], gbits) in memo:
                        continue
                    ca, cb = dag.fanins[child - n]
                    queries.append(
                        (
                            gbits,
                            pairs[child - n],
                            pi_bits[ca] if ca < n else None,
                            pi_bits[cb] if cb < n else None,
                        )
                    )
            if queries:
                engine.prefetch_pairs(queries)
        sols = []
        for ga, gb, group_ops in groups:
            sub_a = None
            if a >= n:
                if not feasible(a, ga):
                    continue
                sub_a = solve_tree(a, ga)
                if not sub_a:
                    continue
            sub_b = None
            if b >= n:
                if not feasible(b, gb):
                    continue
                sub_b = solve_tree(b, gb)
                if not sub_b:
                    continue
            sols.append((group_ops, sub_a, sub_b))
        result = tuple(sols)
        memo[key] = result
        return result

    def tree_assignments(signal: int, sols: tuple):
        """Expand a nested solution forest into concrete
        ``((node, op), ...)`` assignment tuples for the cone's gates."""
        a, b = dag.fanins[signal - n]
        for group_ops, sub_a, sub_b in sols:
            a_asgs = (
                ((),)
                if sub_a is None
                else tuple(tree_assignments(a, sub_a))
            )
            b_asgs = (
                ((),)
                if sub_b is None
                else tuple(tree_assignments(b, sub_b))
            )
            for asg_a in a_asgs:
                for asg_b in b_asgs:
                    rest = asg_a + asg_b
                    for op in group_ops:
                        yield ((signal - n, op),) + rest

    def solve_cone(signal: int, demand_bits: int) -> tuple:
        """All op-vectors realizing a demand on a private non-tree cone.

        The cone is relabeled as a standalone pDAG and solved by a
        recursive :func:`assign_operators` search on a sub-engine of
        the cone's width; results are memoized in the engine's
        ``cone_memo`` keyed on the relabeled structure and the
        localized demand, so structurally equal cones across sibling
        pDAGs, fences and targets — and different PI embeddings of the
        same structure — resolve to one dict probe.  An empty set
        vetoes every branch that would place this demand, killing
        shared-spine families wholesale.
        """
        sub_fanins, cone_pis, _, _ = priv[signal - n]
        local = engine.localize(demand_bits, cone_pis)
        key = (sub_fanins, len(cone_pis), local)
        memo = engine.cone_memo
        hit = memo.get(key)
        if hit is None:
            hit = _solve_subdag(
                sub_fanins, len(cone_pis), local, engine, deadline
            )
            memo[key] = hit
        return hit

    def emit() -> Iterator[BooleanChain]:
        pools = []
        for i in range(num_nodes):
            if op_choices[i] is not None:
                pools.append(
                    tuple(((i, op),) for op in op_choices[i])
                )
        for signal, sols in tree_sols.items():
            pools.append(tuple(tree_assignments(signal, sols)))
        for signal, opvecs in cone_sols.items():
            gate_list = priv[signal - n][2]
            pools.append(
                tuple(
                    tuple(
                        (g - n, op) for g, op in zip(gate_list, vec)
                    )
                    for vec in opvecs
                )
            )
        for combo in itertools.product(*pools):
            deadline.check(every=64)
            assigned = dict(
                pair for part in combo for pair in part
            )
            chain = BooleanChain(n)
            for i, (fa_i, fb_i) in enumerate(dag.fanins):
                chain.add_gate(assigned[i], (fa_i, fb_i))
            chain.set_output(top)
            yield chain

    def viable_groups(
        node: int, gv: int, fa: int | None, fb: int | None
    ) -> tuple:
        """The node's factorization groups with doomed children removed.

        A group dies when a fresh child demand fails the gate-count
        bound, the tree-relaxation realizability filter, or (for a
        private tree child) has no exact subtree solution.  The
        filtered list is memoized at the engine level keyed on the
        query plus each free child's cone structure, so shared-spine
        solves returning hundreds of demand pairs are winnowed once —
        every later branch context and sibling pDAG iterates only the
        survivors.
        """
        a, b = dag.fanins[node]
        ka = None if fa is not None else struct_ids[a - n]
        kb = None if fb is not None else struct_ids[b - n]
        key = (pairs[node].pid, gv, fa, fb, ka, kb)
        memo = engine.groups_memo
        hit = memo.get(key)
        if hit is not None:
            return hit
        groups = engine.decompositions_pairs(gv, pairs[node], fa, fb)
        # Child verdicts depend only on (cone structure, demand) — the
        # same granularity as the memo key's child components — so they
        # are shared engine-wide: filtering a fresh context over demands
        # already judged elsewhere is a dict probe per group.
        da = None if ka is None else engine.viable_memo.setdefault(ka, {})
        db = None if kb is None else engine.viable_memo.setdefault(kb, {})
        if len(groups) > 1:
            fresh_a = None if da is None else {
                ga for ga, _, _ in groups if ga not in da
            }
            fresh_b = None if db is None else {
                gb for _, gb, _ in groups if gb not in db
            }
            if fresh_a or fresh_b:
                prefetch_children(fresh_a, fresh_b, a, b)
        out = []
        for ga, gb, group_ops in groups:
            if da is not None:
                v = da.get(ga)
                if v is None:
                    da[ga] = v = child_viable(a, ga)
                if not v:
                    continue
            if db is not None:
                v = db.get(gb)
                if v is None:
                    db[gb] = v = child_viable(b, gb)
                if not v:
                    continue
            out.append((ga, gb, group_ops))
        result = tuple(out)
        memo[key] = result
        return result

    def child_viable(child: int, gbits: int) -> bool:
        if not feasible(child, gbits):
            return False
        if tree_flags[child - n]:
            return bool(solve_tree(child, gbits))
        # Cheap tree-relaxation first: the exact sub-DAG solve only
        # runs on demands the necessary condition cannot refute.
        if not realizable(child, gbits):
            return False
        if priv[child - n][3]:
            return bool(solve_cone(child, gbits))
        return True

    def place_child(child: int, gbits: int, pending: set[int]) -> None:
        """Bind an already-vetted fresh demand on ``child``."""
        if tree_flags[child - n]:
            tree_sols[child] = solve_tree(child, gbits)
        elif priv[child - n][3]:
            cone_sols[child] = solve_cone(child, gbits)
        else:
            pending.add(child - n)
        demands[child] = gbits

    def unplace_child(child: int, pending: set[int]) -> None:
        del demands[child]
        if tree_sols.pop(child, None) is not None:
            return
        if cone_sols.pop(child, None) is not None:
            return
        pending.discard(child - n)

    def rec(pending: set[int]) -> Iterator[BooleanChain]:
        if not pending:
            yield from emit()
            return
        deadline.check(every=64)
        node = pick_node(pending)
        pending.discard(node)
        gv = demands[n + node]
        a, b = dag.fanins[node]
        fa = fixed_bits(a)
        fb = fixed_bits(b)
        new_a = fa is None
        new_b = fb is None
        for ga, gb, group_ops in viable_groups(node, gv, fa, fb):
            if new_a:
                place_child(a, ga, pending)
            if new_b:
                place_child(b, gb, pending)
            op_choices[node] = group_ops
            yield from rec(pending)
            op_choices[node] = None
            if new_a:
                unplace_child(a, pending)
            if new_b:
                unplace_child(b, pending)
        pending.add(node)

    if not feasible(top, f.bits):
        return
    if tree_flags[num_nodes - 1]:
        sols = solve_tree(top, f.bits)
        if sols:
            tree_sols[top] = sols
            yield from emit()
        return
    yield from rec({num_nodes - 1})


# ----------------------------------------------------------------------
# stage 4: inverse-NPN / lift / dedup
# ----------------------------------------------------------------------
def finalize_stage(
    state: PipelineState, ctx: SynthesisContext
) -> list[BooleanChain]:
    """Rewrite the search's chains back over the original inputs."""
    spec = state.spec
    with ctx.stage("finalize"):
        chains = state.chains
        if state.npn_transform is not None:
            inverse = state.npn_transform.inverse()
            chains = [npn_transform_chain(c, inverse) for c in chains]
            if spec.canonicalize_dont_cares and spec.all_solutions:
                chains = [canonicalize_dont_cares(c) for c in chains]
        lifted = [
            lift_chain(c, spec.function.num_vars, state.support)
            for c in chains
        ]
        return dedup_chains(lifted)


def canonicalize_dont_cares(chain: BooleanChain) -> BooleanChain:
    """Zero every LUT row no input assignment can exercise.

    Factorizations through shared variables (power-reduce don't-cares,
    Property 3) leave some gate-code rows unconstrained, so chains that
    behave identically can differ in unobservable LUT bits.  Forcing
    those bits to 0 gives each behaviour a single representative.
    """
    tables = chain.simulate_signals()
    fixed = BooleanChain(chain.num_inputs)
    for gate in chain.gates:
        reachable = 0
        child = [tables[f] for f in gate.fanins]
        for m in range(1 << chain.num_inputs):
            row = 0
            for i, t in enumerate(child):
                row |= t.value(m) << i
            reachable |= 1 << row
        fixed.add_gate(gate.op & reachable, gate.fanins)
    for signal, complemented in chain.outputs:
        fixed.set_output(signal, complemented)
    return fixed


def dedup_chains(chains: list[BooleanChain]) -> list[BooleanChain]:
    """Keep the first chain of each signature, preserving order."""
    seen: set[tuple] = set()
    unique = []
    for chain in chains:
        key = chain.signature()
        if key not in seen:
            seen.add(key)
            unique.append(chain)
    return unique
