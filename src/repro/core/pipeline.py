"""The STP synthesis pipeline as composable stages.

The paper's algorithm (Section III) is a fixed sequence of concerns;
this module expresses each as a stage function over a shared
:class:`PipelineState` and :class:`~repro.core.context.SynthesisContext`:

1. :func:`normalize_stage` — trivial-chain check and projection onto
   the functional support;
2. :func:`canonicalize_stage` — optional NPN canonicalization so the
   search runs on the class representative (memoized via the cache);
3. :func:`search_stage` — the bottom-up gate-count loop: cached
   fence/pDAG topology families (Section III-A), operator assignment
   by STP matrix factorization (Section III-B), AllSAT verification
   (Section III-C), and polarity expansion of the normal-form
   solutions;
4. :func:`finalize_stage` — inverse-NPN rewrite, lifting back to the
   original input space, don't-care canonicalization, and dedup.

Stages communicate only through the state object and record their
wall-clock cost under per-stage names in ``ctx.stats.stage_seconds``,
so entry points can report exactly where a run's budget went.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from ..chain.chain import BooleanChain
from ..chain.transform import (
    flip_signal,
    lift_chain,
    npn_transform_chain,
    shrink_to_support,
    trivial_chain,
)
from ..kernels import KERNEL_STATS
from ..runtime.errors import SynthesisInfeasible
from ..topology.dag import DagTopology
from ..truthtable.npn import NPNTransform
from ..truthtable.table import TruthTable, projection
from .circuit_sat import verify_chain
from .context import SynthesisContext
from .factorization import FactorizationEngine
from .sizebound import min_gates_lower_bound
from .spec import Deadline, SynthesisResult, SynthesisSpec

__all__ = [
    "PipelineState",
    "run_pipeline",
    "normalize_stage",
    "canonicalize_stage",
    "search_stage",
    "finalize_stage",
]

#: Cross-run cache of size lower bounds, keyed by (table bits, arity).
_BOUND_CACHE: dict[tuple[int, int], int] = {}

#: Re-entrancy depth of :func:`run_pipeline` in this process.  Nested
#: runs (an engine adapter delegating to the pipeline, say) must not
#: fold the kernel-counter delta twice, so only the outermost call —
#: the one returning to depth 0 — owns the window between its snapshot
#: and the global counters.
_PIPELINE_DEPTH = 0


@dataclass
class PipelineState:
    """Mutable state threaded through the pipeline stages.

    ``target`` is the function the search actually runs on — the
    support-local projection, or its NPN class representative when the
    spec asks for it; ``chains`` always computes ``target`` until
    :func:`finalize_stage` rewrites them back over the original inputs.
    """

    spec: SynthesisSpec
    trivial: BooleanChain | None = None
    local: TruthTable | None = None
    support: tuple[int, ...] = ()
    target: TruthTable | None = None
    npn_transform: NPNTransform | None = None
    chains: list[BooleanChain] = field(default_factory=list)
    num_gates: int = 0


def run_pipeline(
    spec: SynthesisSpec, ctx: SynthesisContext | None = None
) -> SynthesisResult:
    """Run the full stage sequence for one synthesis problem."""
    global _PIPELINE_DEPTH
    if ctx is None:
        ctx = SynthesisContext.create(timeout=spec.timeout)
    start = time.perf_counter()
    kernel_snapshot = KERNEL_STATS.snapshot()
    _PIPELINE_DEPTH += 1
    try:
        state = normalize_stage(spec, ctx)
        if state.trivial is not None:
            return SynthesisResult(
                spec,
                [state.trivial],
                0,
                time.perf_counter() - start,
                ctx.stats,
            )
        canonicalize_stage(state, ctx)
        search_stage(state, ctx)
        chains = finalize_stage(state, ctx)
        return SynthesisResult(
            spec,
            chains,
            state.num_gates,
            time.perf_counter() - start,
            ctx.stats,
        )
    finally:
        _PIPELINE_DEPTH -= 1
        if _PIPELINE_DEPTH == 0:
            ctx.stats.record_kernels(*KERNEL_STATS.since(kernel_snapshot))


# ----------------------------------------------------------------------
# stage 1: normalize / support-shrink
# ----------------------------------------------------------------------
def normalize_stage(
    spec: SynthesisSpec, ctx: SynthesisContext
) -> PipelineState:
    """Trivial-chain check and projection onto the functional support."""
    state = PipelineState(spec)
    with ctx.stage("normalize"):
        state.trivial = trivial_chain(spec.function)
        if state.trivial is None:
            state.local, state.support = shrink_to_support(spec.function)
            state.target = state.local
    return state


# ----------------------------------------------------------------------
# stage 2: NPN canonicalize
# ----------------------------------------------------------------------
def canonicalize_stage(
    state: PipelineState, ctx: SynthesisContext
) -> None:
    """Swap the target for its NPN class representative (optional).

    Gate counts and solution-set sizes are NPN-invariant, so searching
    on the representative is exact; the payoff is that every orbit
    member shares the representative's factorization memo and search
    effort.  The transform is remembered for :func:`finalize_stage`.
    """
    if not state.spec.npn_canonicalize:
        return
    with ctx.stage("canonicalize"):
        rep, transform = ctx.cache.npn_canonical(
            state.local, stats=ctx.stats
        )
        state.target = rep
        state.npn_transform = transform


# ----------------------------------------------------------------------
# stage 3: topology enumeration + factorization + verification
# ----------------------------------------------------------------------
def search_stage(state: PipelineState, ctx: SynthesisContext) -> None:
    """Find all optimal chains for the target at the first feasible size.

    Raises :class:`~repro.runtime.errors.SynthesisInfeasible` when the
    gate cap is exhausted.
    """
    spec = state.spec
    target = state.target
    s = target.num_vars
    engine = ctx.cache.factorization_engine(
        s,
        spec.operators,
        spec.max_solutions,
        deadline=ctx.deadline,
        stats=ctx.stats,
    )
    for r in range(max(1, s - 1), spec.effective_max_gates() + 1):
        normal = _search_at_size(target, r, engine, spec, ctx)
        if normal:
            if spec.all_solutions:
                with ctx.stage("expand"):
                    state.chains = _expand_polarities(
                        normal, target, spec, ctx.deadline
                    )
            else:
                state.chains = normal
            state.num_gates = r
            return
    raise SynthesisInfeasible(
        f"no chain with up to {spec.effective_max_gates()} gates "
        f"found for 0x{spec.function.to_hex()}"
    )


def _search_at_size(
    f: TruthTable,
    r: int,
    engine: FactorizationEngine,
    spec: SynthesisSpec,
    ctx: SynthesisContext,
) -> list[BooleanChain]:
    """All *normal-form* chains with exactly ``r`` gates (empty if none).

    The search pins every internal non-output signal to a function that
    is 0 on the all-zero input (the canonical polarity of the
    factorization engine).  Each polarity orbit has exactly one normal
    member, so the full solution set is the normal set expanded by all
    ``2^(r-1)`` internal-signal complementations — the search can
    therefore stop well before the solution cap.
    """
    stats = ctx.stats
    deadline = ctx.deadline
    s = f.num_vars
    with ctx.stage("topology"):
        families = ctx.cache.topology_families(
            r, s, require_all_pis=True, deadline=deadline, stats=stats
        )
    normal_solutions: list[BooleanChain] = []
    seen: set[tuple] = set()
    normal_cap = max(1, -(-spec.max_solutions // (1 << max(0, r - 1))))
    with ctx.stage("search"):
        for fence, dags in families:
            stats.fences_examined += 1
            for dag in dags:
                stats.dags_examined += 1
                deadline.check()
                for chain in assign_operators(dag, f, engine, deadline):
                    stats.candidates_generated += 1
                    if spec.verify:
                        stats.candidates_verified += 1
                        if not verify_chain(chain, f):
                            stats.verification_failures += 1
                            continue
                    key = chain.signature()
                    if key in seen:
                        continue
                    seen.add(key)
                    normal_solutions.append(chain)
                    if not spec.all_solutions:
                        return normal_solutions
                    if len(normal_solutions) >= normal_cap:
                        return normal_solutions
    return normal_solutions


def _expand_polarities(
    normal_solutions: list[BooleanChain],
    f: TruthTable,
    spec: SynthesisSpec,
    deadline: Deadline,
) -> list[BooleanChain]:
    """Blow the normal-form solutions up to the full optimal set by
    complementing internal (non-output) signals."""
    expanded: list[BooleanChain] = []
    seen: set[tuple] = set()
    for base in normal_solutions:
        output_signal = base.outputs[0][0]
        flippable = [
            base.num_inputs + i
            for i in range(base.num_gates)
            if base.num_inputs + i != output_signal
        ]
        for combo in range(1 << len(flippable)):
            deadline.check(every=32)
            variant = base
            for j, signal in enumerate(flippable):
                if (combo >> j) & 1:
                    variant = flip_signal(variant, signal)
            if combo and variant.simulate_output() != f:
                raise AssertionError(
                    "polarity variant changed the function"
                )
            if spec.canonicalize_dont_cares:
                variant = canonicalize_dont_cares(variant)
            key = variant.signature()
            if key in seen:
                continue
            seen.add(key)
            expanded.append(variant)
            if len(expanded) >= spec.max_solutions:
                return expanded
    return expanded


def assign_operators(
    dag: DagTopology,
    f: TruthTable,
    engine: FactorizationEngine,
    deadline: Deadline,
) -> Iterator[BooleanChain]:
    """Section III-B: assign a 2-LUT to every pDAG vertex by repeated
    STP factorization, top node first.

    Two sound prunes keep the backtracking shallow:

    * a demanded function whose support exceeds the fanin cones cannot
      be factorized (checked inside the engine), and
    * a demand of support ``s`` placed on a signal whose cone contains
      ``m`` gates is infeasible when ``m < s - 1`` (every 2-input chain
      needs at least ``support - 1`` gates).
    """
    n = dag.num_pis
    num_nodes = dag.num_nodes

    # Per-signal reachable PIs (sorted tuples) and cone gate counts.
    cone_sets: list[frozenset[int]] = [frozenset((i,)) for i in range(n)]
    gate_sets: list[frozenset[int]] = [frozenset() for _ in range(n)]
    for i, (a, b) in enumerate(dag.fanins):
        cone_sets.append(cone_sets[a] | cone_sets[b])
        gate_sets.append(gate_sets[a] | gate_sets[b] | {n + i})
    cones = [tuple(sorted(c)) for c in cone_sets]
    cone_gates = [len(g) for g in gate_sets]

    demands: dict[int, TruthTable] = {dag.top_signal: f}
    ops: list[int | None] = [None] * num_nodes
    pi_tables = [projection(i, n) for i in range(n)]

    def fixed_of(signal: int) -> TruthTable | None:
        if signal < n:
            return pi_tables[signal]
        return demands.get(signal)

    def feasible(signal: int, demand: TruthTable) -> bool:
        key = (demand.bits, n)
        bound = _BOUND_CACHE.get(key)
        if bound is None:
            bound = min_gates_lower_bound(demand)
            _BOUND_CACHE[key] = bound
        return bound <= cone_gates[signal]

    def pick_node(pending: set[int]) -> int:
        """Most-constrained-first ordering: nodes whose fanins are both
        fixed are pure consistency checks and fail fastest; prefer one
        fixed fanin next; fall back to the highest (topmost) node."""
        best = -1
        best_score = -1
        for node in pending:
            a, b = dag.fanins[node]
            score = 4 * (
                (a < n or a in demanded_signals)
                + (b < n or b in demanded_signals)
            ) + (node / num_nodes)
            if score > best_score:
                best_score = score
                best = node
        return best

    demanded_signals: set[int] = {dag.top_signal}

    def rec(pending: set[int]) -> Iterator[BooleanChain]:
        if not pending:
            chain = BooleanChain(n)
            for i, (a, b) in enumerate(dag.fanins):
                chain.add_gate(ops[i], (a, b))
            chain.set_output(dag.top_signal)
            yield chain
            return
        deadline.check(every=64)
        node = pick_node(pending)
        pending.discard(node)
        signal = n + node
        g_v = demands[signal]
        a, b = dag.fanins[node]
        fixed_a = fixed_of(a)
        fixed_b = fixed_of(b)
        for fac in engine.decompositions(
            g_v, cones[a], cones[b], fixed_a, fixed_b
        ):
            new_a = fixed_a is None
            new_b = fixed_b is None
            if new_a and not feasible(a, fac.g_a):
                continue
            if new_b and not feasible(b, fac.g_b):
                continue
            if new_a:
                demands[a] = fac.g_a
                demanded_signals.add(a)
                pending.add(a - n)
            if new_b:
                demands[b] = fac.g_b
                demanded_signals.add(b)
                pending.add(b - n)
            ops[node] = fac.op
            yield from rec(pending)
            ops[node] = None
            if new_a:
                del demands[a]
                demanded_signals.discard(a)
                pending.discard(a - n)
            if new_b:
                del demands[b]
                demanded_signals.discard(b)
                pending.discard(b - n)
        pending.add(node)

    if feasible(dag.top_signal, f):
        yield from rec({num_nodes - 1})


# ----------------------------------------------------------------------
# stage 4: inverse-NPN / lift / dedup
# ----------------------------------------------------------------------
def finalize_stage(
    state: PipelineState, ctx: SynthesisContext
) -> list[BooleanChain]:
    """Rewrite the search's chains back over the original inputs."""
    spec = state.spec
    with ctx.stage("finalize"):
        chains = state.chains
        if state.npn_transform is not None:
            inverse = state.npn_transform.inverse()
            chains = [npn_transform_chain(c, inverse) for c in chains]
            if spec.canonicalize_dont_cares and spec.all_solutions:
                chains = [canonicalize_dont_cares(c) for c in chains]
        lifted = [
            lift_chain(c, spec.function.num_vars, state.support)
            for c in chains
        ]
        return dedup_chains(lifted)


def canonicalize_dont_cares(chain: BooleanChain) -> BooleanChain:
    """Zero every LUT row no input assignment can exercise.

    Factorizations through shared variables (power-reduce don't-cares,
    Property 3) leave some gate-code rows unconstrained, so chains that
    behave identically can differ in unobservable LUT bits.  Forcing
    those bits to 0 gives each behaviour a single representative.
    """
    tables = chain.simulate_signals()
    fixed = BooleanChain(chain.num_inputs)
    for gate in chain.gates:
        reachable = 0
        child = [tables[f] for f in gate.fanins]
        for m in range(1 << chain.num_inputs):
            row = 0
            for i, t in enumerate(child):
                row |= t.value(m) << i
            reachable |= 1 << row
        fixed.add_gate(gate.op & reachable, gate.fanins)
    for signal, complemented in chain.outputs:
        fixed.set_output(signal, complemented)
    return fixed


def dedup_chains(chains: list[BooleanChain]) -> list[BooleanChain]:
    """Keep the first chain of each signature, preserving order."""
    seen: set[tuple] = set()
    unique = []
    for chain in chains:
        key = chain.signature()
        if key not in seen:
            seen.add(key)
            unique.append(chain)
    return unique
