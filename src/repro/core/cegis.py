"""Counterexample-guided exact synthesis (CEGIS).

The hard-instance recovery engine behind the racing executor, and a
genuinely independent cross-check for the differential oracle.  The
loop follows the classic CEGIS shape (cf. Riener et al., *Exact
Synthesis of ESOP Forms*): synthesize a candidate chain that is merely
consistent with a small **sample** of input assignments, verify it
against the full specification, and on a mismatch grow the sample with
counterexample assignments before re-solving.  On structured functions
the sample stays tiny and the SAT instances are far smaller than a
fully-constrained encoding; the price is extra verify/refine rounds on
dense functions.

Three deliberate departures from the ``lutexact`` baseline (which is a
row-at-a-time CEGAR over the same SSV encoding) keep this engine an
*independent* code path rather than a clone:

* the initial sample is a deterministic pseudo-random spread of
  assignment rows derived from the function bits (not the lowest
  rows), so the two engines explore different SAT instances;
* counterexamples are added in **batches** (several mis-predicted rows
  per round, spread across the row space) instead of one per round,
  trading slightly larger instances for far fewer solver calls;
* candidate verification runs through the packed-cube
  :func:`~repro.core.circuit_sat.verify_chain` kernel — the paper's
  STP circuit AllSAT — rather than plain simulation, so the verifier
  the oracle trusts is itself exercised on every refinement round.

Exactness: gate counts are tried in increasing order and the encoding
constrained on a *subset* of rows is a relaxation, so UNSAT on the
sample implies UNSAT on the full specification — the first verified
candidate is size-optimal.
"""

from __future__ import annotations

import random
import time

from ..chain.chain import BooleanChain
from ..chain.transform import lift_chain, shrink_to_support, trivial_chain
from ..core.circuit_sat import verify_chain
from ..core.spec import (
    Deadline,
    SynthesisResult,
    SynthesisSpec,
    SynthesisStats,
)
from ..runtime.errors import SynthesisInfeasible
from ..sat.encodings import SSVEncoder, normalize_function
from ..sat.solver import CDCLSolver
from ..truthtable.table import TruthTable

__all__ = ["CegisSynthesizer", "cegis_synthesize"]


class CegisSynthesizer:
    """Sample-based exact synthesis with counterexample refinement.

    Parameters
    ----------
    max_gates:
        Hard cap on the gate count tried before declaring
        infeasibility (default: the spec heuristic).
    initial_samples:
        Size of the seed assignment sample.
    refine_batch:
        Maximum counterexample rows added per refinement round.
    seed:
        Base seed for the deterministic sample spread; the function
        bits are folded in so distinct targets draw distinct samples
        while every run on one target is reproducible.
    """

    def __init__(
        self,
        max_gates: int | None = None,
        *,
        initial_samples: int = 4,
        refine_batch: int = 4,
        seed: int = 2023,
    ) -> None:
        self._max_gates = max_gates
        self._initial_samples = max(1, initial_samples)
        self._refine_batch = max(1, refine_batch)
        self._seed = seed

    def synthesize(
        self, function: TruthTable, timeout: float | None = None
    ) -> SynthesisResult:
        """Find one size-optimal chain for ``function``."""
        start = time.perf_counter()
        deadline = Deadline(timeout)
        stats = SynthesisStats()
        spec = SynthesisSpec(
            function=function,
            max_gates=self._max_gates,
            timeout=timeout,
            all_solutions=False,
        )

        chain = trivial_chain(function)
        if chain is not None:
            return SynthesisResult(
                spec, [chain], 0, time.perf_counter() - start, stats
            )

        local, support = shrink_to_support(function)
        normal, complemented = normalize_function(local)
        target = ~normal if complemented else normal
        sample = self._seed_sample(normal)
        lower = max(1, len(support) - 1)
        for r in range(lower, spec.effective_max_gates() + 1):
            # The sample persists across gate counts: rows that refuted
            # r-gate candidates constrain the (r+1)-gate search too.
            found = self._solve_at_size(
                normal, target, r, complemented, sample, deadline, stats
            )
            if found is not None:
                lifted = lift_chain(found, function.num_vars, support)
                if not verify_chain(lifted, function):
                    raise AssertionError(
                        "lifted CEGIS chain does not realise the target"
                    )
                return SynthesisResult(
                    spec,
                    [lifted],
                    r,
                    time.perf_counter() - start,
                    stats,
                )
        raise SynthesisInfeasible(
            f"cegis found no chain within "
            f"{spec.effective_max_gates()} gates"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _seed_sample(self, normal: TruthTable) -> set[int]:
        """A deterministic pseudo-random spread of assignment rows.

        Row 0 is excluded — normality already pins it — and onset rows
        are preferred so the seed carries actual signal about the
        function rather than only off-rows.
        """
        rows = list(range(1, normal.num_rows))
        rng = random.Random(self._seed ^ (normal.bits * 2 + 1))
        rng.shuffle(rows)
        rows.sort(key=lambda t: 0 if normal.value(t) else 1)
        return set(rows[: self._initial_samples])

    def _solve_at_size(
        self,
        normal: TruthTable,
        target: TruthTable,
        r: int,
        complemented: bool,
        sample: set[int],
        deadline: Deadline,
        stats: SynthesisStats,
    ) -> BooleanChain | None:
        """CEGIS loop at a fixed gate count; ``None`` when UNSAT."""
        while True:
            deadline.check()
            encoder = SSVEncoder(
                normal, r, rows=sample, deadline=deadline
            )
            solver = CDCLSolver()
            if not solver.add_cnf(encoder.cnf):
                return None
            stats.candidates_generated += 1
            if not solver.solve(deadline=deadline):
                # UNSAT on a row subset is UNSAT on the full spec.
                return None
            candidate = encoder.decode(solver.model(), complemented)
            stats.candidates_verified += 1
            if verify_chain(candidate, target):
                return candidate
            stats.verification_failures += 1
            self._refine(candidate, target, sample)

    def _refine(
        self,
        candidate: BooleanChain,
        target: TruthTable,
        sample: set[int],
    ) -> None:
        """Grow the sample with a batch of counterexample rows."""
        simulated = candidate.simulate_output()
        diff = simulated.bits ^ target.bits
        fresh = [
            t
            for t in range(1, target.num_rows)
            if (diff >> t) & 1 and t not in sample
        ]
        if not fresh:
            # Every differing row is already constrained — impossible
            # with a sound encoding; guard against a livelock.
            raise AssertionError("CEGIS refinement made no progress")
        # Spread the batch across the row space instead of taking the
        # lowest rows, so refinement pulls in structurally distinct
        # assignments.
        stride = max(1, len(fresh) // self._refine_batch)
        sample.update(fresh[::stride][: self._refine_batch])


def cegis_synthesize(
    function: TruthTable, timeout: float | None = None
) -> SynthesisResult:
    """One-call CEGIS exact synthesis."""
    return CegisSynthesizer().synthesize(function, timeout=timeout)
