"""The shared per-run context threaded through the pipeline stages.

Every stage of the synthesis pipeline — normalize, NPN-canonicalize,
topology enumeration, STP factorization, AllSAT verification, and the
final lift/expand/dedup — receives one :class:`SynthesisContext`
carrying the cooperative deadline, the per-stage stats counters and
timers, the cross-call cache bundle, and any per-engine tuning knobs.
Engines create a fresh context per top-level call (sharing the
process-global cache); composite engines hand sub-runs a :meth:`child`
context so sub-deadlines nest and stats aggregate cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache import SynthesisCache, get_cache
from .spec import Deadline, SynthStats

__all__ = ["SynthesisContext"]


@dataclass
class SynthesisContext:
    """Shared state for one synthesis run.

    Attributes
    ----------
    deadline:
        The run's cooperative wall-clock budget.
    stats:
        Per-stage counters/timers; lands on the returned
        :class:`~repro.core.spec.SynthesisResult`.
    cache:
        The cross-call cache bundle (NPN / topology / factorization).
    engine_kwargs:
        Per-engine tuning knobs, as in the runtime fallback chain.
    """

    deadline: Deadline
    stats: SynthStats
    cache: SynthesisCache
    engine_kwargs: dict = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        timeout: float | None = None,
        cache: SynthesisCache | None = None,
        stats: SynthStats | None = None,
        engine_kwargs: dict | None = None,
    ) -> "SynthesisContext":
        """A fresh context (global cache, new deadline and stats)."""
        return cls(
            deadline=Deadline(timeout),
            stats=stats if stats is not None else SynthStats(),
            cache=cache if cache is not None else get_cache(),
            engine_kwargs=engine_kwargs or {},
        )

    def child(
        self,
        timeout: float | None = None,
        fresh_stats: bool = False,
    ) -> "SynthesisContext":
        """A nested context for a sub-run.

        The child's deadline never outlives this one; the cache and
        engine kwargs are shared.  ``fresh_stats`` gives the child its
        own counters (callers then :meth:`~SynthStats.merge` them back)
        — composite engines use this to avoid double counting.
        """
        return SynthesisContext(
            deadline=self.deadline.subdeadline(timeout),
            stats=SynthStats() if fresh_stats else self.stats,
            cache=self.cache,
            engine_kwargs=self.engine_kwargs,
        )

    def stage(self, name: str):
        """Context manager timing one pipeline stage into the stats."""
        return self.stats.stage(name)
