"""STP matrix factorization of canonical forms (Section III-B).

Given a demanded function ``g_v`` at a DAG node whose two fanins reach
primary-input sets ``S_a`` and ``S_b``, this module enumerates every
way to write ``g_v = φ(g_a, g_b)`` with ``g_a`` over ``S_a``, ``g_b``
over ``S_b`` and ``φ`` a 2-input operator — i.e. it factors the STP
canonical form ``M_{g_v}`` into a structural matrix and two smaller
logic matrices.

*Disjoint* fanin supports use the paper's "two unique quartering
parts" criterion (Examples 5–6): grouping the columns of ``M_{g_v}``
by the assignment of ``S_a`` must produce at most two distinct column
blocks, the block indicator *is* ``g_a`` (up to a polarity absorbed by
``φ``), and ``g_b`` follows column-wise.  Reordering interleaved
variables is Property 1's swap (``M_w``); we realise it by permuting
truth-table variables, the same linear map.

*Overlapping* supports are the power-reducing case (Properties 3–4):
repeated variables introduce don't-care entries, so the factor pair is
no longer block-determined.  We solve the induced binary constraint
system — one constraint ``φ(g_a(α), g_b(β)) = g_v(γ)`` per joint
assignment ``γ`` — by arc consistency plus backtracking, enumerating
exactly the assignments the paper re-checks with the circuit AllSAT
solver.

The search issues millions of queries per hard instance, so the hot
paths run entirely on packed Python ints: quartering parts are packed
β-profiles, the per-β allowed-value scan is a handful of mask ops, and
the both-children-fixed case collapses to a cone-independent operator
pattern match memoized on ``(g_v, g_a, g_b)``.  Cone shapes (index
maps, γ-class masks, profile memos) live in a module-level registry
shared by every engine, and :meth:`FactorizationEngine.prefetch_pairs`
routes homogeneous disjoint-cone demand batches through the vectorized
:func:`~repro.kernels.factorization.solve_disjoint_batch` kernel.

Demand pruning: at a *minimal* gate count no chain can contain a gate
whose function is constant, a (complemented) projection, or equal
(complemented) to its parent's function — any such gate could be
dropped, contradicting minimality.  When the operator set is closed
under input/output complementation these prunes are sound; for
non-closed operator sets they are disabled automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as _product
from typing import Iterator, Sequence

from ..kernels.bitops import collapse_indices, spread_indices, var_mask
from ..kernels.factorization import (
    FLIP_INPUT0,
    FLIP_INPUT1,
    expand_positions,
    index_maps,
    quartering_profiles,
    solve_disjoint_batch,
)
from ..truthtable.table import TruthTable
from .spec import Deadline

__all__ = ["Factorization", "FactorizationEngine", "is_complement_closed"]


def is_complement_closed(ops: Sequence[int]) -> bool:
    """True when the operator set is closed under complementing either
    input or the output (required for the minimality prunes).  The
    input complements are the kernel layer's precomputed 16-entry flip
    tables."""
    op_set = set(ops)
    for code in ops:
        if not {FLIP_INPUT0[code], FLIP_INPUT1[code], code ^ 0xF} <= op_set:
            return False
    return True


@dataclass(frozen=True)
class Factorization:
    """One factorization ``g_v = φ(g_a, g_b)``.

    ``op`` is the gate code with the *first* fanin as the low
    truth-table variable; ``g_a``/``g_b`` are global tables (over all
    DAG inputs) whose support lies inside the fanin cones.
    """

    op: int
    g_a: TruthTable
    g_b: TruthTable


class _Shape:
    """One union-local cone shape with its shape-keyed memos.

    Shapes are registered process-globally (see :func:`_shape`) so
    every engine — and every fence family revisiting the same cone
    shape — shares the index maps, γ-class masks and quartering-profile
    memo.  Everything here is pure structure: nothing depends on the
    operator set, caps or deadlines.
    """

    __slots__ = (
        "nu",
        "a_pos",
        "b_pos",
        "size_a",
        "size_b",
        "full_a",
        "full_b",
        "full_g",
        "disjoint",
        "gamma_of",
        "gamma_flat",
        "amap_list",
        "bmap_list",
        "aclass_masks",
        "bclass_masks",
        "_profiles",
        "_aexp",
        "_bexp",
        "_shared",
        "_cof_memo",
    )

    def __init__(
        self, nu: int, a_pos: tuple[int, ...], b_pos: tuple[int, ...]
    ) -> None:
        amap, bmap, disjoint, gamma_of = index_maps(nu, a_pos, b_pos)
        self.nu = nu
        self.a_pos = a_pos
        self.b_pos = b_pos
        self.size_a = 1 << len(a_pos)
        self.size_b = 1 << len(b_pos)
        self.full_a = (1 << self.size_a) - 1
        self.full_b = (1 << self.size_b) - 1
        self.full_g = (1 << (1 << nu)) - 1
        self.disjoint = disjoint
        self.gamma_of = gamma_of
        self.gamma_flat = (
            gamma_of.ravel().tolist() if disjoint else None
        )
        self.amap_list = amap.tolist()
        self.bmap_list = bmap.tolist()
        aclass = [0] * self.size_a
        bclass = [0] * self.size_b
        for gamma in range(1 << nu):
            aclass[self.amap_list[gamma]] |= 1 << gamma
            bclass[self.bmap_list[gamma]] |= 1 << gamma
        self.aclass_masks = aclass
        self.bclass_masks = bclass
        self._profiles: dict[int, tuple[int, ...]] = {}
        self._aexp: dict[int, int] = {}
        self._bexp: dict[int, int] = {}
        self._shared: tuple | None | bool = False
        self._cof_memo: dict[tuple, tuple] = {}

    @property
    def batchable(self) -> bool:
        """Whether :func:`solve_disjoint_batch` handles this shape."""
        return self.disjoint and self.size_a <= 62 and self.size_b <= 62

    def profiles(self, gv_local: int) -> tuple[int, ...]:
        """Packed quartering β-profiles of a union-local table."""
        cached = self._profiles.get(gv_local)
        if cached is None:
            cached = quartering_profiles(
                gv_local,
                self.nu,
                self.gamma_flat,
                self.size_a,
                self.size_b,
            )
            self._profiles[gv_local] = cached
        return cached

    def a_expand(self, child_bits: int) -> int:
        """A-child value per γ row, packed over the union rows."""
        out = self._aexp.get(child_bits)
        if out is None:
            out = 0
            m = child_bits
            masks = self.aclass_masks
            while m:
                cell = (m & -m).bit_length() - 1
                m &= m - 1
                out |= masks[cell]
            self._aexp[child_bits] = out
        return out

    def b_expand(self, child_bits: int) -> int:
        """B-child value per γ row, packed over the union rows."""
        out = self._bexp.get(child_bits)
        if out is None:
            out = 0
            m = child_bits
            masks = self.bclass_masks
            while m:
                cell = (m & -m).bit_length() - 1
                m &= m - 1
                out |= masks[cell]
            self._bexp[child_bits] = out
        return out

    def shared_info(self) -> tuple | None:
        """Cofactor-split structure for the shared free-free solver.

        Splitting the union variables into the shared set ``S`` and the
        private remainders ``A' = A \\ S`` / ``B' = B \\ S``, every
        constraint row couples cells of one shared assignment ``s``
        only, so the factorization decomposes into ``2^|S|``
        independent subproblems whose solution sets multiply (the
        cofactors of ``g_a`` at distinct ``s`` are independent
        functions over ``A'``).  Returns ``(sh_count, sap, sbp, gbase,
        offa, offb, a_spread, b_spread)`` — the γ-row offsets of each
        (s, α', β') split and, per ``s``, the table mapping a packed
        cofactor onto its cells of the full child index — or ``None``
        when a private side is too wide and the generic CSP should run
        instead.
        """
        info = self._shared
        if info is False:
            a_pos, b_pos = self.a_pos, self.b_pos
            sset = set(a_pos) & set(b_pos)
            spos = sorted(sset)
            a_fr = [v for v in a_pos if v not in sset]
            b_fr = [v for v in b_pos if v not in sset]
            if len(a_fr) > 3 or len(b_fr) > 3 or len(spos) > 4:
                info = None
            else:
                sh_count = 1 << len(spos)
                sap = 1 << len(a_fr)
                sbp = 1 << len(b_fr)
                gbase = [
                    sum(((s >> k) & 1) << p for k, p in enumerate(spos))
                    for s in range(sh_count)
                ]
                offa = [
                    sum(((m >> j) & 1) << p for j, p in enumerate(a_fr))
                    for m in range(sap)
                ]
                offb = [
                    sum(((m >> j) & 1) << p for j, p in enumerate(b_fr))
                    for m in range(sbp)
                ]
                a_spread = _cofactor_spread(a_pos, spos, a_fr, sap)
                b_spread = _cofactor_spread(b_pos, spos, b_fr, sbp)
                info = (
                    sh_count, sap, sbp, gbase, offa, offb,
                    a_spread, b_spread,
                )
            self._shared = info
        return info


def _cofactor_spread(
    pos: tuple[int, ...],
    spos: list[int],
    free: list[int],
    width: int,
) -> list[list[int]]:
    """Per shared assignment ``s``, the table mapping a packed cofactor
    (one bit per free-variable cell) onto its child-local index bits."""
    sh_j = [pos.index(p) for p in spos]
    fr_j = [pos.index(p) for p in free]
    out = []
    for s in range(1 << len(spos)):
        base = sum(((s >> k) & 1) << j for k, j in enumerate(sh_j))
        cell = [
            base | sum(((m >> j) & 1) << jj for j, jj in enumerate(fr_j))
            for m in range(width)
        ]
        table = [0] * (1 << width)
        for m in range(1, 1 << width):
            low = m & -m
            table[m] = table[m ^ low] | (
                1 << cell[low.bit_length() - 1]
            )
        out.append(table)
    return out


_SHAPES: dict[tuple[int, tuple[int, ...], tuple[int, ...]], _Shape] = {}


def _shape(
    nu: int, a_pos: tuple[int, ...], b_pos: tuple[int, ...]
) -> _Shape:
    key = (nu, a_pos, b_pos)
    shape = _SHAPES.get(key)
    if shape is None:
        shape = _Shape(nu, a_pos, b_pos)
        _SHAPES[key] = shape
    return shape


class _PairInfo:
    """One (cone_a, cone_b) pair as seen by a specific engine.

    ``pid`` is a small per-engine integer used in packed query-cache
    keys; the variable masks drive the support-containment checks and
    ``shape`` is the shared union-local structure.
    """

    __slots__ = (
        "pid",
        "a_vars",
        "b_vars",
        "u_vars",
        "amask",
        "bmask",
        "umask",
        "shape",
    )


class FactorizationEngine:
    """Memoizing factorization over one synthesis run."""

    def __init__(
        self,
        num_vars: int,
        operators: Sequence[int],
        max_solutions_per_query: int = 4096,
        deadline: Deadline | None = None,
    ) -> None:
        self._num_vars = num_vars
        self._ops = tuple(operators)
        self._closed = is_complement_closed(self._ops)
        self._cap = max_solutions_per_query
        self._deadline = deadline
        self._stats = None
        self._small = num_vars <= 4
        self._full = (1 << (1 << num_vars)) - 1
        # pair registry and the layered memos (see class docstring)
        self._pairs: dict[tuple, _PairInfo] = {}
        self._bits_cache: dict = {}
        self._local_cache: dict[tuple, tuple] = {}
        self._cons_cache: dict = {}
        self._pattern_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._support_cache: dict[int, int] = {}
        self._loc_cache: dict = {}
        self._exp_cache: dict = {}
        self._spread: dict[tuple[int, ...], list[int]] = {}
        self._collapse: dict[tuple[int, ...], list[int]] = {}
        self._table_cache: dict[int, TruthTable] = {}
        self._fac_cache: dict[tuple, tuple] = {}
        #: Cross-topology memos owned by the pipeline, keyed on
        #: ``(cone_shape_term, demand_bits)``: complete solution sets
        #: of private tree-shaped cones, and the tree-relaxation
        #: realizability filter.  They live here so sibling pDAGs and
        #: successive fences of every run sharing this engine reuse the
        #: same subtree factorizations.
        self.tree_memo: dict = {}
        self.realize_memo: dict = {}
        self.groups_memo: dict = {}
        self.viable_memo: dict = {}
        #: Private non-tree cones: complete op-vector solution sets
        #: keyed ``(relabeled sub-DAG fanins, num cone PIs, localized
        #: demand)``, plus the pool of narrower sub-engines that solve
        #: them (one per cone PI count, same operators and cap).
        self.cone_memo: dict = {}
        self._sub_engines: dict[int, "FactorizationEngine"] = {}

    @property
    def prunes_enabled(self) -> bool:
        """Whether minimality prunes are active (operator set closed)."""
        return self._closed

    @property
    def cached_queries(self) -> int:
        """Number of memoized top-level queries."""
        return len(self._bits_cache)

    def bind(self, deadline: Deadline | None = None, stats=None) -> None:
        """Rebind the per-run deadline and stats sink.

        The memo keys depend only on the immutable ``(num_vars,
        operators, cap)`` config, so one engine can serve many runs —
        the cross-call factorization memo — as long as each run binds
        its own deadline before querying.
        """
        self._deadline = deadline
        self._stats = stats

    def for_num_vars(self, num_vars: int) -> "FactorizationEngine":
        """A sub-engine over ``num_vars`` inputs with this engine's
        operator set and cap, rebound to the current deadline/stats.

        Private-cone solves relabel a cone as a standalone pDAG over
        its own PIs; the recursive search then needs an engine of that
        narrower width.  Sub-engines are pooled so their memos persist
        alongside the parent's.
        """
        if num_vars == self._num_vars:
            return self
        sub = self._sub_engines.get(num_vars)
        if sub is None:
            sub = FactorizationEngine(
                num_vars, self._ops, max_solutions_per_query=self._cap
            )
            self._sub_engines[num_vars] = sub
        sub.bind(self._deadline, self._stats)
        return sub

    def localize(self, bits: int, vars_: tuple[int, ...]) -> int:
        """Project a demand onto the sorted variable tuple ``vars_``
        (packed truth table over ``len(vars_)`` inputs)."""
        return self._localize(bits, vars_)

    def clear_caches(self) -> None:
        """Drop all memoized state (memory backstop for long suites)."""
        self._bits_cache.clear()
        self._local_cache.clear()
        self._cons_cache.clear()
        self._pattern_cache.clear()
        self._support_cache.clear()
        self._loc_cache.clear()
        self._exp_cache.clear()
        self._table_cache.clear()
        self._fac_cache.clear()
        self.tree_memo.clear()
        self.realize_memo.clear()
        self.groups_memo.clear()
        self.viable_memo.clear()
        self.cone_memo.clear()
        for sub in self._sub_engines.values():
            sub.clear_caches()

    # ------------------------------------------------------------------
    # pair registry and packed keys
    # ------------------------------------------------------------------
    def pair_info(
        self, cone_a: Sequence[int], cone_b: Sequence[int]
    ) -> _PairInfo:
        """The engine's handle for one (cone_a, cone_b) pair.

        Callers that query the same node across many branch states
        (the pipeline) fetch the handle once and pass it to
        :meth:`decompositions_pairs` / :meth:`prefetch_pairs`.
        """
        a_vars = (
            cone_a if isinstance(cone_a, tuple) else tuple(sorted(cone_a))
        )
        b_vars = (
            cone_b if isinstance(cone_b, tuple) else tuple(sorted(cone_b))
        )
        key = (a_vars, b_vars)
        pair = self._pairs.get(key)
        if pair is None:
            u_vars = tuple(sorted(set(a_vars) | set(b_vars)))
            position = {v: i for i, v in enumerate(u_vars)}
            pair = _PairInfo()
            pair.pid = len(self._pairs)
            pair.a_vars = a_vars
            pair.b_vars = b_vars
            pair.u_vars = u_vars
            pair.amask = sum(1 << v for v in a_vars)
            pair.bmask = sum(1 << v for v in b_vars)
            pair.umask = pair.amask | pair.bmask
            pair.shape = _shape(
                len(u_vars),
                tuple(position[v] for v in a_vars),
                tuple(position[v] for v in b_vars),
            )
            self._pairs[key] = pair
        return pair

    def _key(
        self,
        gv: int,
        pair: _PairInfo,
        fa: int | None,
        fb: int | None,
        canonical: bool,
    ):
        """Query-cache key; a single machine int for ≤4-var engines."""
        if self._small:
            return (
                gv
                | ((0 if fa is None else fa + 1) << 16)
                | ((0 if fb is None else fb + 1) << 33)
                | (pair.pid << 50)
                | ((1 << 62) if canonical else 0)
            )
        return (gv, pair.pid, fa, fb, canonical)

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    def decompositions(
        self,
        g_v: TruthTable,
        cone_a: Sequence[int],
        cone_b: Sequence[int],
        fixed_a: TruthTable | None = None,
        fixed_b: TruthTable | None = None,
        canonical: bool = True,
    ) -> tuple[Factorization, ...]:
        """Factorizations of ``g_v`` over the given fanin cones.

        ``cone_a`` / ``cone_b`` are the PIs reachable through each fanin
        (sorted tuples preferred — sets are normalised).  ``fixed_a`` /
        ``fixed_b`` pin a child to an already-assigned function (e.g. a
        primary-input projection).

        With ``canonical=True`` (default) free child demands are pinned
        to *normal* functions (value 0 on the all-zero row).  Every
        polarity orbit has exactly one normal representative when the
        operator set is complement-closed, so feasibility and optimal
        size are unaffected while the branching halves per child; the
        synthesizer recovers the full solution set by polarity
        expansion.  ``canonical=False`` enumerates every polarity.
        """
        canonical = canonical and self._closed
        pair = self.pair_info(cone_a, cone_b)
        fa = None if fixed_a is None else fixed_a.bits
        fb = None if fixed_b is None else fixed_b.bits
        key = (g_v.bits, pair.pid, fa, fb, canonical)
        cached = self._fac_cache.get(key)
        if cached is not None:
            return cached
        out = []
        for ga_bits, gb_bits, group_ops in self.decompositions_pairs(
            g_v.bits, pair, fa, fb, canonical
        ):
            g_a = fixed_a if fixed_a is not None else self._table(ga_bits)
            g_b = fixed_b if fixed_b is not None else self._table(gb_bits)
            for code in group_ops:
                out.append(Factorization(code, g_a, g_b))
        result = tuple(out)
        self._fac_cache[key] = result
        return result

    def decompositions_pairs(
        self,
        gv_bits: int,
        pair: _PairInfo,
        fixed_a_bits: int | None = None,
        fixed_b_bits: int | None = None,
        canonical: bool = True,
    ) -> tuple[tuple[int, int, tuple[int, ...]], ...]:
        """Factorizations grouped by the child pair, on packed ints.

        Returns ``(g_a_bits, g_b_bits, ops)`` triples over the global
        row space — once both children of a node are determined the
        operator choices are mutually independent, so the search
        branches per *pair* and multiplies the operator lists out only
        at complete assignments.  Semantics otherwise match
        :meth:`decompositions` (same solutions, grouped).
        """
        canonical = canonical and self._closed
        key = self._key(gv_bits, pair, fixed_a_bits, fixed_b_bits, canonical)
        cached = self._bits_cache.get(key)
        st = self._stats
        if st is not None:
            bucket = st.cache_hits if cached is not None else st.cache_misses
            bucket["factorization"] = bucket.get("factorization", 0) + 1
        if cached is not None:
            return cached
        if self._deadline is not None:
            self._deadline.check()
        result = self._solve_query(
            gv_bits, pair, fixed_a_bits, fixed_b_bits, canonical
        )
        self._bits_cache[key] = result
        return result

    def prefetch_pairs(self, queries, canonical: bool = True) -> None:
        """Batch-populate the query memo for a list of pending queries.

        ``queries`` holds ``(gv_bits, pair, fixed_a_bits,
        fixed_b_bits)`` tuples.  Disjoint-cone queries sharing a shape
        and pinning pattern are stacked through the vectorized
        :func:`~repro.kernels.factorization.solve_disjoint_batch`
        kernel; everything else (shared cones, oversized shapes,
        both-pinned consistency checks) is *skipped*, not solved — a
        prefetch is advisory, and eagerly running the scalar solvers
        here would pay for branches the search may prune before ever
        querying them.  Cache-hit accounting is not recorded here — the
        later :meth:`decompositions_pairs` calls see hits as usual.
        """
        canonical = canonical and self._closed
        batches: dict[tuple, dict] = {}
        for gv, pair, fa, fb in queries:
            if not pair.shape.batchable or (
                fa is not None and fb is not None
            ):
                continue
            key = self._key(gv, pair, fa, fb, canonical)
            if key in self._bits_cache:
                continue
            group = batches.setdefault(
                (pair.pid, fa is None, fb is None), {}
            )
            group[key] = (gv, pair, fa, fb)
        for members in batches.values():
            pending = []
            for key, (gv, pair, fa, fb) in members.items():
                shape = pair.shape
                if (
                    self._support_mask(gv) & ~pair.umask
                    or (
                        fa is not None
                        and self._support_mask(fa) & ~pair.amask
                    )
                    or (
                        fb is not None
                        and self._support_mask(fb) & ~pair.bmask
                    )
                ):
                    self._bits_cache[key] = ()
                    continue
                gv_local = self._localize(gv, pair.u_vars)
                fa_local = (
                    None if fa is None else self._localize(fa, pair.a_vars)
                )
                fb_local = (
                    None if fb is None else self._localize(fb, pair.b_vars)
                )
                lkey = (
                    gv_local,
                    shape.nu,
                    shape.a_pos,
                    shape.b_pos,
                    fa_local,
                    fb_local,
                    canonical,
                )
                sols = self._local_cache.get(lkey)
                if sols is not None:
                    self._bits_cache[key] = self._group(sols, pair, fa, fb)
                    continue
                pending.append(
                    (key, lkey, pair, fa, fb, gv_local, fa_local, fb_local)
                )
            if not pending:
                continue
            if self._deadline is not None:
                self._deadline.check()
            shape = pending[0][2].shape
            descriptors = solve_disjoint_batch(
                [p[5] for p in pending],
                shape.nu,
                shape.gamma_of,
                self._ops,
                fixed_a_seq=(
                    [p[6] for p in pending]
                    if pending[0][6] is not None
                    else None
                ),
                fixed_b_seq=(
                    [p[7] for p in pending]
                    if pending[0][7] is not None
                    else None
                ),
                canonical=canonical,
            )
            for item, des in zip(pending, descriptors):
                key, lkey, pair, fa, fb, gv_local, fa_local, fb_local = item
                sols = self._finish_disjoint(
                    shape, gv_local, des, fa_local, fb_local, canonical
                )
                self._local_cache[lkey] = sols
                self._bits_cache[key] = self._group(sols, pair, fa, fb)

    # ------------------------------------------------------------------
    # the solve path (cache misses only)
    # ------------------------------------------------------------------
    def _solve_query(
        self,
        gv: int,
        pair: _PairInfo,
        fa: int | None,
        fb: int | None,
        canonical: bool,
    ) -> tuple:
        if self._support_mask(gv) & ~pair.umask:
            return ()  # support leaks outside the union cone
        if fa is not None and self._support_mask(fa) & ~pair.amask:
            return ()
        if fb is not None and self._support_mask(fb) & ~pair.bmask:
            return ()
        if fa is not None and fb is not None:
            ops = self._consistent_ops(gv, fa, fb)
            return ((fa, fb, ops),) if ops else ()
        shape = pair.shape
        gv_local = self._localize(gv, pair.u_vars)
        fa_local = None if fa is None else self._localize(fa, pair.a_vars)
        fb_local = None if fb is None else self._localize(fb, pair.b_vars)
        sols = self._solve_local(
            gv_local, shape, fa_local, fb_local, canonical
        )
        return self._group(sols, pair, fa, fb)

    def _solve_local(
        self,
        gv_local: int,
        shape: _Shape,
        fa_local: int | None,
        fb_local: int | None,
        canonical: bool,
    ) -> tuple:
        """Local solutions, memoized on ``(demand_bits, cone_shape)``
        so sibling DAGs and successive fences reuse the work."""
        key = (
            gv_local,
            shape.nu,
            shape.a_pos,
            shape.b_pos,
            fa_local,
            fb_local,
            canonical,
        )
        cached = self._local_cache.get(key)
        if cached is not None:
            return cached
        if shape.disjoint:
            descriptors = self._disjoint_descriptors(
                shape, gv_local, fa_local, fb_local, canonical
            )
            sols = self._finish_disjoint(
                shape, gv_local, descriptors, fa_local, fb_local, canonical
            )
        elif fa_local is not None or fb_local is not None:
            sols = tuple(
                self._solve_shared_pinned(
                    shape, gv_local, fa_local, fb_local, canonical
                )
            )
        else:
            sols = tuple(self._solve_shared(gv_local, shape, canonical))
        self._local_cache[key] = sols
        return sols

    def _group(
        self, sols: tuple, pair: _PairInfo, fa: int | None, fb: int | None
    ) -> tuple:
        """Globalize local solutions and group them by the child pair."""
        if not sols:
            return ()
        groups: dict[tuple[int, int], list[int]] = {}
        for code, a_loc, b_loc in sols:
            ga = fa if fa is not None else self._expand_bits(
                a_loc, pair.a_vars
            )
            gb = fb if fb is not None else self._expand_bits(
                b_loc, pair.b_vars
            )
            groups.setdefault((ga, gb), []).append(code)
        return tuple(
            (ga, gb, tuple(codes))
            for (ga, gb), codes in groups.items()
        )

    # ------------------------------------------------------------------
    # both children fixed: cone-independent operator pattern match
    # ------------------------------------------------------------------
    def _consistent_ops(
        self, gv: int, ga: int, gb: int
    ) -> tuple[int, ...]:
        """Operators with ``φ(g_a, g_b) = g_v`` pointwise (global).

        Each joint row falls in one of four minterm classes of
        ``(g_a, g_b)``; consistency is a per-class uniformity check and
        the surviving operators are a pattern match memoized on the
        ``(pattern, wildcard)`` signature — cone-independent, so every
        DAG revisiting the triple shares the answer.
        """
        key = (
            gv | (ga << 16) | (gb << 32)
            if self._small
            else (gv, ga, gb)
        )
        ops = self._cons_cache.get(key)
        if ops is not None:
            return ops
        full = self._full
        m11 = ga & gb
        m10 = ga & ~gb & full
        m01 = gb & ~ga & full
        m00 = ~(ga | gb) & full
        pattern = 0
        wild = 0
        ops = None
        for i, mask in enumerate((m00, m10, m01, m11)):
            if not mask:
                wild |= 1 << i
                continue
            r = gv & mask
            if r == mask:
                pattern |= 1 << i
            elif r:
                ops = ()  # class mixes 0s and 1s: no operator fits
                break
        if ops is None:
            pkey = (pattern, wild)
            ops = self._pattern_cache.get(pkey)
            if ops is None:
                ops = tuple(
                    code
                    for code in self._ops
                    if not (code ^ pattern) & ~wild & 0xF
                )
                self._pattern_cache[pkey] = ops
        self._cons_cache[key] = ops
        return ops

    # ------------------------------------------------------------------
    # support masks and local/global conversions (cached, pure-int)
    # ------------------------------------------------------------------
    def _support_mask(self, bits: int) -> int:
        """Variable-support bitmask of a global table (memoized)."""
        m = self._support_cache.get(bits)
        if m is None:
            m = 0
            for v in range(self._num_vars):
                vm = var_mask(v, self._num_vars)
                shift = 1 << v
                if (bits & vm) >> shift != bits & (vm >> shift):
                    m |= 1 << v
            self._support_cache[bits] = m
        return m

    def _localize(self, bits: int, vars_: tuple[int, ...]) -> int:
        """Project a global table onto a cone (support known inside)."""
        key = (bits, vars_)
        out = self._loc_cache.get(key)
        if out is None:
            sp = self._spread.get(vars_)
            if sp is None:
                sp = spread_indices(vars_, self._num_vars).tolist()
                self._spread[vars_] = sp
            out = 0
            for i, row in enumerate(sp):
                out |= ((bits >> row) & 1) << i
            self._loc_cache[key] = out
        return out

    def _expand_bits(self, local_bits: int, vars_: tuple[int, ...]) -> int:
        """Expand a cone-local table onto the global row space."""
        key = (local_bits, vars_)
        out = self._exp_cache.get(key)
        if out is None:
            cm = self._collapse.get(vars_)
            if cm is None:
                cm = collapse_indices(vars_, self._num_vars).tolist()
                self._collapse[vars_] = cm
            out = 0
            for m, c in enumerate(cm):
                out |= ((local_bits >> c) & 1) << m
            self._exp_cache[key] = out
        return out

    def _table(self, bits: int) -> TruthTable:
        table = self._table_cache.get(bits)
        if table is None:
            table = TruthTable(bits, self._num_vars)
            self._table_cache[bits] = table
        return table

    # ------------------------------------------------------------------
    # minimality prunes
    # ------------------------------------------------------------------
    def _admissible_local(
        self,
        child_bits: int,
        child_pos: tuple[int, ...],
        gv_bits: int,
        nu: int,
        fixed: bool,
    ) -> bool:
        """Minimality prunes on a free child demand (local form).

        The constant/projection verdict and the union-space expansion
        depend only on ``(child_bits, child_pos, nu)``, so they are
        memoized module-wide (``-1`` marks always-inadmissible); per
        call only the parent-equality compare remains.
        """
        if fixed or not self._closed:
            return True
        key = (child_bits, child_pos, nu)
        expanded = _ADM_BASE.get(key)
        if expanded is None:
            expanded = _admissible_base(child_bits, child_pos, nu)
            _ADM_BASE[key] = expanded
        if expanded < 0:
            return False
        gv_full = (1 << (1 << nu)) - 1
        return expanded != gv_bits and expanded != (gv_bits ^ gv_full)

    # ------------------------------------------------------------------
    # disjoint cones: quartering parts on packed β-profiles
    # ------------------------------------------------------------------
    def _disjoint_descriptors(
        self,
        shape: _Shape,
        gv_local: int,
        fa_local: int | None,
        fb_local: int | None,
        canonical: bool,
    ) -> list[tuple[int, int, int, int]]:
        """Scalar twin of the batch kernel: ``(code, a_bits, forced_b,
        free_b_mask)`` descriptors for one demand (same contract and
        order as :func:`solve_disjoint_batch` per batch entry)."""
        profiles = shape.profiles(gv_local)
        full_b = shape.full_b
        candidates: list[tuple[int, int | None, int | None]] = []
        if fa_local is None:
            d = profiles[0]
            c = None
            for p in profiles:
                if p != d:
                    if c is None:
                        c = p
                    elif p != c:
                        return []  # three distinct parts (Example 5.2)
            if c is None:
                return []  # degenerate: g_v independent of the A cone
            a_bits = 0
            for alpha, p in enumerate(profiles):
                if p == c:
                    a_bits |= 1 << alpha
            # a_bits has bit 0 clear (α = 0 falls in the d group), i.e.
            # it is the *normal* polarity; the complemented indicator
            # is the other member of the polarity orbit.
            candidates.append((a_bits, c, d))
            if not canonical:
                candidates.append((a_bits ^ shape.full_a, d, c))
        else:
            # A is pinned; both groups must be internally uniform.
            c = d = None
            for alpha, p in enumerate(profiles):
                if (fa_local >> alpha) & 1:
                    if c is None:
                        c = p
                    elif p != c:
                        return []
                else:
                    if d is None:
                        d = p
                    elif p != d:
                        return []
            candidates.append((fa_local, c, d))

        descriptors = []
        for a_bits, c, d in candidates:
            for code in self._ops:
                # B value v is allowed at β iff the c profile matches
                # φ(1, v) and the d profile matches φ(0, v) there.
                allowed0 = allowed1 = full_b
                if c is not None:
                    allowed0 &= c if (code >> 1) & 1 else ~c
                    allowed1 &= c if (code >> 3) & 1 else ~c
                if d is not None:
                    allowed0 &= d if code & 1 else ~d
                    allowed1 &= d if (code >> 2) & 1 else ~d
                allowed0 &= full_b
                allowed1 &= full_b
                if (allowed0 | allowed1) != full_b:
                    continue
                forced = allowed1 & ~allowed0
                freem = allowed0 & allowed1
                if fb_local is not None:
                    # Pinned B: every non-free cell must carry its
                    # forced value.
                    if (
                        (freem | ~(fb_local ^ forced)) & full_b
                    ) == full_b:
                        descriptors.append((code, a_bits, fb_local, 0))
                    continue
                descriptors.append((code, a_bits, forced, freem))
        return descriptors

    def _finish_disjoint(
        self,
        shape: _Shape,
        gv_local: int,
        descriptors,
        fa_local: int | None,
        fb_local: int | None,
        canonical: bool,
    ) -> tuple:
        """Expand descriptors into ``(code, a_local, b_local)`` tuples,
        applying admissibility prunes and the per-descriptor cap —
        shared by the scalar path and the batch kernel epilogue."""
        out = []
        cap = self._cap
        free_a = fa_local is None
        a_ok: dict[int, bool] = {}
        nu = shape.nu
        for code, a_bits, b_base, freem in descriptors:
            if free_a:
                ok = a_ok.get(a_bits)
                if ok is None:
                    ok = self._admissible_local(
                        a_bits, shape.a_pos, gv_local, nu, False
                    )
                    a_ok[a_bits] = ok
                if not ok:
                    continue
            if fb_local is not None:
                out.append((code, a_bits, b_base))
                continue
            forced = b_base
            if canonical and forced & 1:
                continue  # B would not be normal
            free_cells = []
            m = freem
            while m:
                free_cells.append((m & -m).bit_length() - 1)
                m &= m - 1
            emitted = 0
            for combo in range(1 << len(free_cells)):
                b_bits = forced
                for j, beta in enumerate(free_cells):
                    if (combo >> j) & 1:
                        b_bits |= 1 << beta
                if canonical and b_bits & 1:
                    continue  # not normal
                if self._admissible_local(
                    b_bits, shape.b_pos, gv_local, nu, False
                ):
                    out.append((code, a_bits, b_bits))
                    emitted += 1
                    if emitted >= cap:
                        break
        return tuple(out)

    # ------------------------------------------------------------------
    # shared cones with one child pinned: packed row masks
    # ------------------------------------------------------------------
    def _solve_shared_pinned(
        self,
        shape: _Shape,
        gv_local: int,
        fa_local: int | None,
        fb_local: int | None,
        canonical: bool,
    ) -> Iterator[tuple[int, int, int]]:
        """Shared-support factorization with exactly one child pinned.

        With (say) ``g_a`` known, each constraint involves exactly one
        unknown ``B_β`` cell, so the solution set is a per-cell domain
        intersection followed by a cartesian expansion of the cells
        left unconstrained — no search required.  The row verdicts are
        packed ints over the γ rows; a cell is forced when its γ-class
        mask intersects the failing rows of one value.
        """
        swap = fa_local is None
        if swap:
            pin = fb_local
            pin_rows = shape.b_expand(pin)
            class_masks = shape.aclass_masks
            free_pos = shape.a_pos
        else:
            pin = fa_local
            pin_rows = shape.a_expand(pin)
            class_masks = shape.bclass_masks
            free_pos = shape.b_pos
        full_g = shape.full_g
        npin_rows = ~pin_rows & full_g
        cap = self._cap
        nu = shape.nu
        for code in self._ops:
            # out0/out1: the chain output per γ row when the free child
            # takes value 0/1 (row index of φ is (g_b << 1) | g_a).
            if swap:
                out0 = (pin_rows if (code >> 2) & 1 else 0) | (
                    npin_rows if code & 1 else 0
                )
                out1 = (pin_rows if (code >> 3) & 1 else 0) | (
                    npin_rows if (code >> 1) & 1 else 0
                )
            else:
                out0 = (pin_rows if (code >> 1) & 1 else 0) | (
                    npin_rows if code & 1 else 0
                )
                out1 = (pin_rows if (code >> 3) & 1 else 0) | (
                    npin_rows if (code >> 2) & 1 else 0
                )
            mis0 = out0 ^ gv_local
            mis1 = out1 ^ gv_local
            if mis0 & mis1:
                continue  # some row fails under both free values
            forced = 0
            freem = 0
            ok = True
            for cell, cls in enumerate(class_masks):
                fail0 = mis0 & cls  # value 0 fails on some class row
                fail1 = mis1 & cls  # value 1 fails on some class row
                if fail0:
                    if fail1:
                        ok = False
                        break
                    forced |= 1 << cell
                elif not fail1:
                    freem |= 1 << cell
            if not ok:
                continue
            if canonical:
                if forced & 1:
                    continue  # free child would not be normal
                freem &= ~1
            free_cells = []
            m = freem
            while m:
                free_cells.append((m & -m).bit_length() - 1)
                m &= m - 1
            emitted = 0
            for combo in range(1 << len(free_cells)):
                bits = forced
                for j, cell in enumerate(free_cells):
                    if (combo >> j) & 1:
                        bits |= 1 << cell
                if not self._admissible_local(
                    bits, free_pos, gv_local, nu, False
                ):
                    continue
                if swap:
                    yield (code, bits, pin)
                else:
                    yield (code, pin, bits)
                emitted += 1
                if emitted >= cap:
                    break

    # ------------------------------------------------------------------
    # shared cones, both children free: cofactor product
    # ------------------------------------------------------------------
    def _solve_shared(
        self, gv_bits: int, shape: _Shape, canonical: bool
    ) -> Iterator[tuple[int, int, int]]:
        """Power-reduce factorization (shared variables) by shared-set
        cofactor split.

        For each assignment ``s`` of the shared variables the
        constraint rows touch only the ``s``-cofactors of the children,
        so per operator the solution set is the product over ``s`` of
        tiny independent subproblems (solved by
        :func:`_cofactor_solutions` and memoized on the cofactor
        β-profiles, which repeat heavily across demands).  Shapes with
        a wide private side fall back to the generic CSP."""
        info = shape.shared_info()
        if info is None:
            yield from self._solve_shared_csp(gv_bits, shape, canonical)
            return
        sh_count, sap, sbp, gbase, offa, offb, a_spread, b_spread = info
        fullb = (1 << sbp) - 1
        prof = []
        for s in range(sh_count):
            base = gbase[s]
            row = []
            for ap in range(sap):
                ba = base | offa[ap]
                p = 0
                for bp in range(sbp):
                    p |= ((gv_bits >> (ba | offb[bp])) & 1) << bp
                row.append(p)
            prof.append(tuple(row))
        memo = shape._cof_memo
        nu = shape.nu
        a_pos, b_pos = shape.a_pos, shape.b_pos
        cap = self._cap
        adm = self._admissible_local
        product = _product
        for code in self._ops:
            per_s = []
            for s in range(sh_count):
                pin = canonical and s == 0
                key = (code, prof[s], pin)
                sols = memo.get(key)
                if sols is None:
                    sols = _cofactor_solutions(code, prof[s], fullb, pin)
                    memo[key] = sols
                if not sols:
                    per_s = None
                    break
                per_s.append(sols)
            if per_s is None:
                continue
            emitted = 0
            for combo in product(*per_s):
                a_bits = 0
                b_bits = 0
                for s in range(sh_count):
                    ua, vb = combo[s]
                    a_bits |= a_spread[s][ua]
                    b_bits |= b_spread[s][vb]
                if not adm(a_bits, a_pos, gv_bits, nu, False):
                    continue
                if not adm(b_bits, b_pos, gv_bits, nu, False):
                    continue
                yield (code, a_bits, b_bits)
                emitted += 1
                if emitted >= cap:
                    break

    def _solve_shared_csp(
        self, gv_bits: int, shape: _Shape, canonical: bool
    ) -> Iterator[tuple[int, int, int]]:
        """Power-reduce factorization (shared variables) via a binary
        CSP solved with arc consistency + backtracking — the fallback
        for shapes too wide for the cofactor split, and the reference
        the fast path is differentially tested against."""
        nu = shape.nu
        a_pos, b_pos = shape.a_pos, shape.b_pos
        size_a, size_b = shape.size_a, shape.size_b
        size_g = 1 << nu
        amap = shape.amap_list
        bmap = shape.bmap_list

        cons_a: list[list[tuple[int, int]]] = [[] for _ in range(size_a)]
        cons_b: list[list[tuple[int, int]]] = [[] for _ in range(size_b)]
        for gamma in range(size_g):
            t = (gv_bits >> gamma) & 1
            cons_a[amap[gamma]].append((bmap[gamma], t))
            cons_b[bmap[gamma]].append((amap[gamma], t))

        base_dom_a = [3] * size_a
        base_dom_b = [3] * size_b
        if canonical:
            # Pin both free children to normal polarity (value 0 on the
            # all-zero row); sound because every polarity orbit has a
            # normal member under a complement-closed operator set.
            base_dom_a[0] = 1
            base_dom_b[0] = 1

        g0 = gv_bits & 1
        a0_dom = base_dom_a[amap[0]]
        b0_dom = base_dom_b[bmap[0]]
        for code in self._ops:
            # Row-0 filter: some (u, v) allowed by the row-0 domains
            # must satisfy φ(u, v) = g_v(0), else skip the whole CSP.
            if not any(
                (a0_dom >> u) & 1
                and (b0_dom >> v) & 1
                and ((code >> ((v << 1) | u)) & 1) == g0
                for u in (0, 1)
                for v in (0, 1)
            ):
                continue
            rel = [
                [(code >> ((v << 1) | u)) & 1 for v in range(2)]
                for u in range(2)
            ]
            dom_a = base_dom_a[:]
            dom_b = base_dom_b[:]

            def propagate() -> bool:
                changed = True
                while changed:
                    changed = False
                    for alpha in range(size_a):
                        new = 0
                        d = dom_a[alpha]
                        for u in (0, 1):
                            if not (d >> u) & 1:
                                continue
                            ok = True
                            for beta, t in cons_a[alpha]:
                                db = dom_b[beta]
                                if not (
                                    (db & 1 and rel[u][0] == t)
                                    or (db & 2 and rel[u][1] == t)
                                ):
                                    ok = False
                                    break
                            if ok:
                                new |= 1 << u
                        if new != d:
                            if not new:
                                return False
                            dom_a[alpha] = new
                            changed = True
                    for beta in range(size_b):
                        new = 0
                        d = dom_b[beta]
                        for v in (0, 1):
                            if not (d >> v) & 1:
                                continue
                            ok = True
                            for alpha, t in cons_b[beta]:
                                da = dom_a[alpha]
                                if not (
                                    (da & 1 and rel[0][v] == t)
                                    or (da & 2 and rel[1][v] == t)
                                ):
                                    ok = False
                                    break
                            if ok:
                                new |= 1 << v
                        if new != d:
                            if not new:
                                return False
                            dom_b[beta] = new
                            changed = True
                return True

            if not propagate():
                continue

            emitted = 0

            def branch() -> Iterator[tuple[int, int]]:
                for alpha in range(size_a):
                    if dom_a[alpha] == 3:
                        for u in (0, 1):
                            saved_a, saved_b = dom_a[:], dom_b[:]
                            dom_a[alpha] = 1 << u
                            if propagate():
                                yield from branch()
                            dom_a[:], dom_b[:] = saved_a, saved_b
                        return
                for beta in range(size_b):
                    if dom_b[beta] == 3:
                        for v in (0, 1):
                            saved_a, saved_b = dom_a[:], dom_b[:]
                            dom_b[beta] = 1 << v
                            if propagate():
                                yield from branch()
                            dom_a[:], dom_b[:] = saved_a, saved_b
                        return
                a_bits = 0
                for alpha in range(size_a):
                    if dom_a[alpha] == 2:
                        a_bits |= 1 << alpha
                b_bits = 0
                for beta in range(size_b):
                    if dom_b[beta] == 2:
                        b_bits |= 1 << beta
                yield (a_bits, b_bits)

            for a_bits, b_bits in branch():
                if not self._admissible_local(
                    a_bits, a_pos, gv_bits, nu, False
                ):
                    continue
                if not self._admissible_local(
                    b_bits, b_pos, gv_bits, nu, False
                ):
                    continue
                yield (code, a_bits, b_bits)
                emitted += 1
                if emitted >= self._cap:
                    break


def _cofactor_solutions(
    code: int, profs: tuple[int, ...], fullb: int, pin: bool
) -> tuple[tuple[int, int], ...]:
    """All ``(ua, vb)`` cofactor pairs of one shared-split subproblem.

    ``profs[α']`` packs the demanded bits over the β' cells for free-A
    assignment α'; the subproblem asks for a bit per α' (the
    ``g_a``-cofactor ``ua``) and a β'-profile ``vb`` (the
    ``g_b``-cofactor) with ``φ_code(ua_{α'}, vb_{β'}) = profs[α'][β']``
    everywhere.  Per α' each choice of ``u`` either pins ``vb`` to one
    value (operator row acts as identity/negation) or leaves it free
    (constant row, feasible only if the profile is that constant), so
    the solutions enumerate by candidate ``vb`` value plus one
    all-rows-constant regime where ``vb`` ranges freely.  ``pin``
    forces normal polarity on both cofactors (the all-zero cells),
    matching the CSP's canonical domains.
    """
    rows = (
        ((code >> 0) & 1, (code >> 2) & 1),
        ((code >> 1) & 1, (code >> 3) & 1),
    )
    opt = []
    for ap, p in enumerate(profs):
        o = []
        for u in (0, 1):
            if pin and ap == 0 and u == 1:
                continue
            c0, c1 = rows[u]
            if c0 == c1:
                if p == (fullb if c0 else 0):
                    o.append((u, None))
            elif c1:
                o.append((u, p))  # row is the identity in v
            else:
                o.append((u, p ^ fullb))  # row negates v
        if not o:
            return ()
        opt.append(o)
    sols = []
    const_opts = [tuple(u for u, vc in o if vc is None) for o in opt]
    if all(const_opts):
        # No chosen row constrains vb: it ranges over every profile
        # (even ones only, when pinned to normal polarity).
        for combo in _product(*const_opts):
            ua = 0
            for ap, u in enumerate(combo):
                ua |= u << ap
            for vb in range(0, fullb + 1, 2 if pin else 1):
                sols.append((ua, vb))
    cands = {vc for o in opt for u, vc in o if vc is not None}
    for vb in sorted(cands):
        if pin and vb & 1:
            continue
        per = []
        for o in opt:
            us = tuple(
                (u, vc is None)
                for u, vc in o
                if vc is None or vc == vb
            )
            if not us:
                per = None
                break
            per.append(us)
        if per is None:
            continue
        for combo in _product(*per):
            ua = 0
            allconst = True
            for ap, (u, isc) in enumerate(combo):
                ua |= u << ap
                if not isc:
                    allconst = False
            if allconst:
                continue  # counted under the free-vb regime above
            sols.append((ua, vb))
    return tuple(sols)


_ADM_BASE: dict[tuple[int, tuple[int, ...], int], int] = {}


def _admissible_base(
    child_bits: int, child_pos: tuple[int, ...], nu: int
) -> int:
    """Demand-independent part of the minimality prunes: ``-1`` when
    the child table is constant or a bare (complemented) projection,
    else its expansion onto the union-local row space."""
    nc = len(child_pos)
    full = (1 << (1 << nc)) - 1
    if child_bits == 0 or child_bits == full:
        return -1
    support = 0
    for i in range(nc):
        if _local_depends(child_bits, nc, i):
            support += 1
            if support > 1:
                break
    if support <= 1:
        return -1
    return _expand_positions_cached(child_bits, child_pos, nu)


def _local_depends(bits: int, num_vars: int, var: int) -> bool:
    """Does a local table depend on local variable ``var``?"""
    mask = var_mask(var, num_vars)
    shift = 1 << var
    hi = (bits & mask) >> shift
    lo = bits & (mask >> shift)
    return hi != lo


_EXPAND_CACHE: dict[tuple[int, tuple[int, ...], int], int] = {}


def _expand_positions_cached(
    child_bits: int, positions: tuple[int, ...], nu: int
) -> int:
    """Expand a child-local table onto the union-local row space."""
    key = (child_bits, positions, nu)
    out = _EXPAND_CACHE.get(key)
    if out is None:
        out = expand_positions(child_bits, positions, nu)
        _EXPAND_CACHE[key] = out
    return out
