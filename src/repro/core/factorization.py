"""STP matrix factorization of canonical forms (Section III-B).

Given a demanded function ``g_v`` at a DAG node whose two fanins reach
primary-input sets ``S_a`` and ``S_b``, this module enumerates every
way to write ``g_v = φ(g_a, g_b)`` with ``g_a`` over ``S_a``, ``g_b``
over ``S_b`` and ``φ`` a 2-input operator — i.e. it factors the STP
canonical form ``M_{g_v}`` into a structural matrix and two smaller
logic matrices.

*Disjoint* fanin supports use the paper's "two unique quartering
parts" criterion (Examples 5–6): grouping the columns of ``M_{g_v}``
by the assignment of ``S_a`` must produce at most two distinct column
blocks, the block indicator *is* ``g_a`` (up to a polarity absorbed by
``φ``), and ``g_b`` follows column-wise.  Reordering interleaved
variables is Property 1's swap (``M_w``); we realise it by permuting
truth-table variables, the same linear map.

*Overlapping* supports are the power-reducing case (Properties 3–4):
repeated variables introduce don't-care entries, so the factor pair is
no longer block-determined.  We solve the induced binary constraint
system — one constraint ``φ(g_a(α), g_b(β)) = g_v(γ)`` per joint
assignment ``γ`` — by arc consistency plus backtracking, enumerating
exactly the assignments the paper re-checks with the circuit AllSAT
solver.

Everything is computed on *cone-local* bit-packed tables and cached on
the local shape, so structurally identical queries from different
pDAGs (or different gate counts) are answered once.

Demand pruning: at a *minimal* gate count no chain can contain a gate
whose function is constant, a (complemented) projection, or equal
(complemented) to its parent's function — any such gate could be
dropped, contradicting minimality.  When the operator set is closed
under input/output complementation these prunes are sound; for
non-closed operator sets they are disabled automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..kernels.bitops import array_to_bits, bits_to_array, var_mask
from ..kernels.factorization import (
    FLIP_INPUT0,
    FLIP_INPUT1,
    expand_array,
    expand_positions,
    index_maps,
    localize_array,
    quartering_blocks,
)
from ..truthtable.table import TruthTable
from .spec import Deadline

__all__ = ["Factorization", "FactorizationEngine", "is_complement_closed"]


def is_complement_closed(ops: Sequence[int]) -> bool:
    """True when the operator set is closed under complementing either
    input or the output (required for the minimality prunes).  The
    input complements are the kernel layer's precomputed 16-entry flip
    tables."""
    op_set = set(ops)
    for code in ops:
        if not {FLIP_INPUT0[code], FLIP_INPUT1[code], code ^ 0xF} <= op_set:
            return False
    return True


@dataclass(frozen=True)
class Factorization:
    """One factorization ``g_v = φ(g_a, g_b)``.

    ``op`` is the gate code with the *first* fanin as the low
    truth-table variable; ``g_a``/``g_b`` are global tables (over all
    DAG inputs) whose support lies inside the fanin cones.
    """

    op: int
    g_a: TruthTable
    g_b: TruthTable


class FactorizationEngine:
    """Memoizing factorization over one synthesis run."""

    def __init__(
        self,
        num_vars: int,
        operators: Sequence[int],
        max_solutions_per_query: int = 4096,
        deadline: Deadline | None = None,
    ) -> None:
        self._num_vars = num_vars
        self._ops = tuple(operators)
        self._closed = is_complement_closed(self._ops)
        self._cap = max_solutions_per_query
        self._deadline = deadline
        self._stats = None
        # local-shape solution cache and assorted small caches
        self._local_cache: dict[tuple, tuple] = {}
        self._shape_cache: dict[tuple, tuple] = {}
        self._localize_cache: dict[tuple, int | None] = {}
        self._globalize_cache: dict[tuple, TruthTable] = {}
        self._query_cache: dict[tuple, tuple] = {}

    @property
    def prunes_enabled(self) -> bool:
        """Whether minimality prunes are active (operator set closed)."""
        return self._closed

    @property
    def cached_queries(self) -> int:
        """Number of memoized top-level queries."""
        return len(self._query_cache)

    def bind(self, deadline: Deadline | None = None, stats=None) -> None:
        """Rebind the per-run deadline and stats sink.

        The memo keys depend only on the immutable ``(num_vars,
        operators, cap)`` config, so one engine can serve many runs —
        the cross-call factorization memo — as long as each run binds
        its own deadline before querying.
        """
        self._deadline = deadline
        self._stats = stats

    def clear_caches(self) -> None:
        """Drop all memoized state (memory backstop for long suites)."""
        self._local_cache.clear()
        self._shape_cache.clear()
        self._localize_cache.clear()
        self._globalize_cache.clear()
        self._query_cache.clear()

    # ------------------------------------------------------------------
    # public query
    # ------------------------------------------------------------------
    def decompositions(
        self,
        g_v: TruthTable,
        cone_a: Sequence[int],
        cone_b: Sequence[int],
        fixed_a: TruthTable | None = None,
        fixed_b: TruthTable | None = None,
        canonical: bool = True,
    ) -> tuple[Factorization, ...]:
        """Factorizations of ``g_v`` over the given fanin cones.

        ``cone_a`` / ``cone_b`` are the PIs reachable through each fanin
        (sorted tuples preferred — sets are normalised).  ``fixed_a`` /
        ``fixed_b`` pin a child to an already-assigned function (e.g. a
        primary-input projection).

        With ``canonical=True`` (default) free child demands are pinned
        to *normal* functions (value 0 on the all-zero row).  Every
        polarity orbit has exactly one normal representative when the
        operator set is complement-closed, so feasibility and optimal
        size are unaffected while the branching halves per child; the
        synthesizer recovers the full solution set by polarity
        expansion.  ``canonical=False`` enumerates every polarity.
        """
        canonical = canonical and self._closed
        a_vars = cone_a if isinstance(cone_a, tuple) else tuple(sorted(cone_a))
        b_vars = cone_b if isinstance(cone_b, tuple) else tuple(sorted(cone_b))
        key = (
            g_v.bits,
            a_vars,
            b_vars,
            None if fixed_a is None else fixed_a.bits,
            None if fixed_b is None else fixed_b.bits,
            canonical,
        )
        cached = self._query_cache.get(key)
        if self._stats is not None:
            self._stats.record_cache("factorization", cached is not None)
        if cached is not None:
            return cached
        if self._deadline is not None:
            self._deadline.check()

        u_vars = tuple(sorted(set(a_vars) | set(b_vars)))
        nu = len(u_vars)

        gv_local = self._localize(g_v.bits, u_vars)
        result: tuple[Factorization, ...]
        if gv_local is None:
            result = ()  # support leaks outside the union cone
        else:
            position = {v: i for i, v in enumerate(u_vars)}
            a_pos = tuple(position[v] for v in a_vars)
            b_pos = tuple(position[v] for v in b_vars)
            fixed_a_local = (
                self._localize(fixed_a.bits, a_vars) if fixed_a is not None else None
            )
            fixed_b_local = (
                self._localize(fixed_b.bits, b_vars) if fixed_b is not None else None
            )
            if (fixed_a is not None and fixed_a_local is None) or (
                fixed_b is not None and fixed_b_local is None
            ):
                result = ()
            else:
                locals_ = self._solve_local(
                    gv_local,
                    nu,
                    a_pos,
                    b_pos,
                    fixed_a_local,
                    fixed_b_local,
                    canonical,
                )
                out = []
                for code, a_bits, b_bits in locals_:
                    g_a = (
                        fixed_a
                        if fixed_a is not None
                        else self._globalize(a_bits, a_vars)
                    )
                    g_b = (
                        fixed_b
                        if fixed_b is not None
                        else self._globalize(b_bits, b_vars)
                    )
                    out.append(Factorization(code, g_a, g_b))
                result = tuple(out)
        self._query_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # local/global conversions (cached)
    # ------------------------------------------------------------------
    def _localize(self, bits: int, vars_sorted: tuple[int, ...]) -> int | None:
        """Project a global table onto a cone; None if support leaks.

        One kernel gather reads the cone rows off the global table and
        the rebuild-compare leak check is a second gather.
        """
        key = (bits, vars_sorted)
        if key in self._localize_cache:
            return self._localize_cache[key]
        local, leak = localize_array(bits, vars_sorted, self._num_vars)
        result = None if leak else array_to_bits(local)
        self._localize_cache[key] = result
        return result

    def _expand(self, local_bits: int, vars_sorted: tuple[int, ...]) -> int:
        return expand_array(local_bits, vars_sorted, self._num_vars)

    def _globalize(
        self, local_bits: int, vars_sorted: tuple[int, ...]
    ) -> TruthTable:
        key = (local_bits, vars_sorted)
        cached = self._globalize_cache.get(key)
        if cached is not None:
            return cached
        table = TruthTable(
            self._expand(local_bits, vars_sorted), self._num_vars
        )
        self._globalize_cache[key] = table
        return table

    # ------------------------------------------------------------------
    # shape maps
    # ------------------------------------------------------------------
    def _maps(
        self, nu: int, a_pos: tuple[int, ...], b_pos: tuple[int, ...]
    ) -> tuple:
        """Per-shape index maps γ → (α, β), cached (kernel arrays)."""
        key = (nu, a_pos, b_pos)
        cached = self._shape_cache.get(key)
        if cached is not None:
            return cached
        result = index_maps(nu, a_pos, b_pos)
        self._shape_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # the local factorization solver
    # ------------------------------------------------------------------
    def _solve_local(
        self,
        gv_bits: int,
        nu: int,
        a_pos: tuple[int, ...],
        b_pos: tuple[int, ...],
        fixed_a: int | None,
        fixed_b: int | None,
        canonical: bool,
    ) -> tuple:
        key = (gv_bits, nu, a_pos, b_pos, fixed_a, fixed_b, canonical)
        cached = self._local_cache.get(key)
        if cached is not None:
            return cached
        amap, bmap, disjoint, gamma_of = self._maps(nu, a_pos, b_pos)
        if disjoint:
            solutions = tuple(
                self._solve_disjoint(
                    gv_bits, nu, a_pos, b_pos, gamma_of,
                    fixed_a, fixed_b, canonical,
                )
            )
        else:
            solutions = tuple(
                self._solve_shared(
                    gv_bits, nu, a_pos, b_pos, amap, bmap,
                    fixed_a, fixed_b, canonical,
                )
            )
        self._local_cache[key] = solutions
        return solutions

    def _admissible_local(
        self,
        child_bits: int,
        child_pos: tuple[int, ...],
        gv_bits: int,
        nu: int,
        fixed: bool,
    ) -> bool:
        """Minimality prunes on a free child demand (local form)."""
        if fixed or not self._closed:
            return True
        nc = len(child_pos)
        full = (1 << (1 << nc)) - 1
        if child_bits == 0 or child_bits == full:
            return False  # constant
        # Support of the child (local) — prune bare projections.
        support = 0
        for i in range(nc):
            if _local_depends(child_bits, nc, i):
                support += 1
                if support > 1:
                    break
        if support <= 1:
            return False
        # child == g_v (±) over the union: expand child onto U.
        expanded = _expand_positions_cached(child_bits, child_pos, nu)
        gv_full = (1 << (1 << nu)) - 1
        if expanded == gv_bits or expanded == (gv_bits ^ gv_full):
            return False
        return True

    def _solve_disjoint(
        self,
        gv_bits: int,
        nu: int,
        a_pos: tuple[int, ...],
        b_pos: tuple[int, ...],
        gamma_of: np.ndarray,
        fixed_a: int | None,
        fixed_b: int | None,
        canonical: bool,
    ) -> Iterator[tuple[int, int, int]]:
        """Quartering-part factorization for disjoint cones.

        The column blocks and their grouping run as one kernel gather
        plus ``np.unique(axis=0)``; the per-β allowed-value scan is a
        pair of vectorized comparisons.  Only the (cap-bounded,
        order-sensitive) free-cell enumeration stays a Python loop.
        """
        na, nb = len(a_pos), len(b_pos)
        size_a, size_b = 1 << na, 1 << nb

        # Column blocks: for each α the β-profile of g_v, as a matrix.
        blocks = quartering_blocks(gv_bits, nu, gamma_of)

        if fixed_a is None:
            uniq, inverse = np.unique(
                blocks, axis=0, return_inverse=True
            )
            if uniq.shape[0] != 2:
                return  # not factorable (Example 5.2) or degenerate
            # The block indicator is g_a up to polarity; both polarities
            # are genuine, distinct solutions (their sub-chains differ),
            # so enumerate both — AllSAT semantics.
            idx0 = int(inverse[0])
            a_bits = array_to_bits(inverse != idx0)
            c_row = uniq[1 - idx0]  # β-profile of the g_a = 1 group
            d_row = uniq[idx0]
            full_a = (1 << size_a) - 1
            # a_bits has bit 0 clear (α = 0 falls in the block0 group),
            # i.e. it is the *normal* polarity; the complemented
            # indicator is the other member of the polarity orbit.
            a_candidates = [(a_bits, c_row, d_row)]
            if not canonical:
                a_candidates.append((a_bits ^ full_a, d_row, c_row))
        else:
            # A is pinned; both groups must be internally uniform.
            fa = bits_to_array(fixed_a, size_a).astype(bool)
            ones = blocks[fa]
            zeros = blocks[~fa]
            if ones.size and (ones != ones[0]).any():
                return
            if zeros.size and (zeros != zeros[0]).any():
                return
            c_row = ones[0] if ones.size else None
            d_row = zeros[0] if zeros.size else None
            a_candidates = [(fixed_a, c_row, d_row)]

        fb_arr = (
            None
            if fixed_b is None
            else bits_to_array(fixed_b, size_b).astype(bool)
        )
        for a_bits, c_row, d_row in a_candidates:
            if not self._admissible_local(
                a_bits, a_pos, gv_bits, nu, fixed_a is not None
            ):
                continue
            a0 = a_bits & 1
            b0 = None if fixed_b is None else fixed_b & 1
            g0 = gv_bits & 1
            for code in self._ops:
                # Row-0 filter: φ(A(0), B(0)) must equal g_v(0); with a
                # known B(0) this rejects the operator outright, and
                # with B free it must hold for at least one value.
                if b0 is not None:
                    if ((code >> ((b0 << 1) | a0)) & 1) != g0:
                        continue
                elif (
                    ((code >> a0) & 1) != g0
                    and ((code >> (2 | a0)) & 1) != g0
                ):
                    continue
                # Allowed B value per β given the two block constraints:
                # value v works iff φ(1, v) matches the c profile and
                # φ(0, v) matches the d profile, elementwise over β.
                avs = []
                for v in (0, 1):
                    ok = np.ones(size_b, dtype=bool)
                    if c_row is not None:
                        ok &= c_row == ((code >> ((v << 1) | 1)) & 1)
                    if d_row is not None:
                        ok &= d_row == ((code >> (v << 1)) & 1)
                    avs.append(ok)
                allowed0, allowed1 = avs
                if not (allowed0 | allowed1).all():
                    continue
                forced_arr = allowed1 & ~allowed0
                free_arr = allowed0 & allowed1
                forced = array_to_bits(forced_arr)
                if fb_arr is not None:
                    # Check the pinned B against the constraints: every
                    # non-free cell must carry its forced value.
                    if (free_arr | (fb_arr == forced_arr)).all():
                        yield (code, a_bits, fixed_b)
                    continue
                free = np.flatnonzero(free_arr).tolist()
                if canonical and forced & 1 and 0 not in free:
                    continue  # B would not be normal
                emitted = 0
                for combo in range(1 << len(free)):
                    b_bits = forced
                    for j, beta in enumerate(free):
                        if (combo >> j) & 1:
                            b_bits |= 1 << beta
                    if canonical and b_bits & 1:
                        continue  # not normal
                    if self._admissible_local(
                        b_bits, b_pos, gv_bits, nu, False
                    ):
                        yield (code, a_bits, b_bits)
                        emitted += 1
                        if emitted >= self._cap:
                            break

    def _solve_shared(
        self,
        gv_bits: int,
        nu: int,
        a_pos: tuple[int, ...],
        b_pos: tuple[int, ...],
        amap: np.ndarray,
        bmap: np.ndarray,
        fixed_a: int | None,
        fixed_b: int | None,
        canonical: bool,
    ) -> Iterator[tuple[int, int, int]]:
        """Power-reduce factorization (shared variables) via a binary
        CSP solved with arc consistency + backtracking."""
        na, nb = len(a_pos), len(b_pos)
        size_a, size_b = 1 << na, 1 << nb
        size_g = 1 << nu

        # Fast paths: with at least one side pinned the constraint
        # system decouples — every free cell's domain is an independent
        # intersection — so no arc consistency or branching is needed.
        if fixed_a is not None or fixed_b is not None:
            yield from self._solve_shared_pinned(
                gv_bits, nu, a_pos, b_pos, amap, bmap,
                fixed_a, fixed_b, canonical,
            )
            return

        # The CSP itself branches on scalar cells; plain lists index
        # faster than 0-d array reads in that inner loop.
        amap = amap.tolist()
        bmap = bmap.tolist()

        cons_a: list[list[tuple[int, int]]] = [[] for _ in range(size_a)]
        cons_b: list[list[tuple[int, int]]] = [[] for _ in range(size_b)]
        for gamma in range(size_g):
            t = (gv_bits >> gamma) & 1
            cons_a[amap[gamma]].append((bmap[gamma], t))
            cons_b[bmap[gamma]].append((amap[gamma], t))

        base_dom_a = (
            [3] * size_a
            if fixed_a is None
            else [1 << ((fixed_a >> alpha) & 1) for alpha in range(size_a)]
        )
        base_dom_b = (
            [3] * size_b
            if fixed_b is None
            else [1 << ((fixed_b >> beta) & 1) for beta in range(size_b)]
        )
        if canonical:
            # Pin both free children to normal polarity (value 0 on the
            # all-zero row); sound because every polarity orbit has a
            # normal member under a complement-closed operator set.
            if fixed_a is None:
                base_dom_a[0] = 1
            if fixed_b is None:
                base_dom_b[0] = 1

        g0 = (gv_bits >> 0) & 1
        a0_dom = base_dom_a[amap[0]]
        b0_dom = base_dom_b[bmap[0]]
        for code in self._ops:
            # Row-0 filter: some (u, v) allowed by the row-0 domains
            # must satisfy φ(u, v) = g_v(0), else skip the whole CSP.
            if not any(
                (a0_dom >> u) & 1
                and (b0_dom >> v) & 1
                and ((code >> ((v << 1) | u)) & 1) == g0
                for u in (0, 1)
                for v in (0, 1)
            ):
                continue
            rel = [
                [(code >> ((v << 1) | u)) & 1 for v in range(2)]
                for u in range(2)
            ]
            dom_a = base_dom_a[:]
            dom_b = base_dom_b[:]

            def propagate() -> bool:
                changed = True
                while changed:
                    changed = False
                    for alpha in range(size_a):
                        new = 0
                        d = dom_a[alpha]
                        for u in (0, 1):
                            if not (d >> u) & 1:
                                continue
                            ok = True
                            for beta, t in cons_a[alpha]:
                                db = dom_b[beta]
                                if not (
                                    (db & 1 and rel[u][0] == t)
                                    or (db & 2 and rel[u][1] == t)
                                ):
                                    ok = False
                                    break
                            if ok:
                                new |= 1 << u
                        if new != d:
                            if not new:
                                return False
                            dom_a[alpha] = new
                            changed = True
                    for beta in range(size_b):
                        new = 0
                        d = dom_b[beta]
                        for v in (0, 1):
                            if not (d >> v) & 1:
                                continue
                            ok = True
                            for alpha, t in cons_b[beta]:
                                da = dom_a[alpha]
                                if not (
                                    (da & 1 and rel[0][v] == t)
                                    or (da & 2 and rel[1][v] == t)
                                ):
                                    ok = False
                                    break
                            if ok:
                                new |= 1 << v
                        if new != d:
                            if not new:
                                return False
                            dom_b[beta] = new
                            changed = True
                return True

            if not propagate():
                continue

            emitted = 0

            def branch() -> Iterator[tuple[int, int]]:
                for alpha in range(size_a):
                    if dom_a[alpha] == 3:
                        for u in (0, 1):
                            saved_a, saved_b = dom_a[:], dom_b[:]
                            dom_a[alpha] = 1 << u
                            if propagate():
                                yield from branch()
                            dom_a[:], dom_b[:] = saved_a, saved_b
                        return
                for beta in range(size_b):
                    if dom_b[beta] == 3:
                        for v in (0, 1):
                            saved_a, saved_b = dom_a[:], dom_b[:]
                            dom_b[beta] = 1 << v
                            if propagate():
                                yield from branch()
                            dom_a[:], dom_b[:] = saved_a, saved_b
                        return
                a_bits = 0
                for alpha in range(size_a):
                    if dom_a[alpha] == 2:
                        a_bits |= 1 << alpha
                b_bits = 0
                for beta in range(size_b):
                    if dom_b[beta] == 2:
                        b_bits |= 1 << beta
                yield (a_bits, b_bits)

            for a_bits, b_bits in branch():
                if not self._admissible_local(
                    a_bits, a_pos, gv_bits, nu, fixed_a is not None
                ):
                    continue
                if not self._admissible_local(
                    b_bits, b_pos, gv_bits, nu, fixed_b is not None
                ):
                    continue
                yield (code, a_bits, b_bits)
                emitted += 1
                if emitted >= self._cap:
                    break

    def _solve_shared_pinned(
        self,
        gv_bits: int,
        nu: int,
        a_pos: tuple[int, ...],
        b_pos: tuple[int, ...],
        amap: np.ndarray,
        bmap: np.ndarray,
        fixed_a: int | None,
        fixed_b: int | None,
        canonical: bool,
    ) -> Iterator[tuple[int, int, int]]:
        """Shared-support factorization with at least one child pinned.

        With (say) ``g_a`` known, each constraint involves exactly one
        unknown ``B_β`` cell, so the solution set is a per-cell domain
        intersection followed by a cartesian expansion of the cells
        left unconstrained — no search required.  Both the both-pinned
        check and the one-sided domain intersection are vectorized over
        the γ rows.
        """
        na, nb = len(a_pos), len(b_pos)
        size_a, size_b = 1 << na, 1 << nb
        size_g = 1 << nu
        gv_arr = bits_to_array(gv_bits, size_g)

        if fixed_a is not None and fixed_b is not None:
            ua = bits_to_array(fixed_a, size_a)[amap]
            vb = bits_to_array(fixed_b, size_b)[bmap]
            rows = (vb.astype(np.int64) << 1) | ua
            for code in self._ops:
                if np.array_equal(
                    (np.int64(code) >> rows) & 1, gv_arr
                ):
                    yield (code, fixed_a, fixed_b)
            return

        # Exactly one side pinned; orient so A is the pinned side.
        swap = fixed_a is None
        if swap:
            pin, pin_size, pin_map = fixed_b, size_b, bmap
            free_size, free_map, free_pos = size_a, amap, a_pos
        else:
            pin, pin_size, pin_map = fixed_a, size_a, amap
            free_size, free_map, free_pos = size_b, bmap, b_pos

        pin_vals = bits_to_array(pin, pin_size)[pin_map].astype(np.int64)
        free_map_arr = np.asarray(free_map)

        for code in self._ops:
            # For each candidate free value v, which γ rows does the
            # operator satisfy?  Fold those row verdicts into per-cell
            # domains with an AND-scatter over the γ → cell map.
            avs = []
            for v in (0, 1):
                rows = (
                    ((pin_vals << 1) | v)
                    if swap
                    else ((np.int64(v) << 1) | pin_vals)
                )
                sat = ((np.int64(code) >> rows) & 1) == gv_arr
                allowed_v = np.ones(free_size, dtype=bool)
                np.logical_and.at(allowed_v, free_map_arr, sat)
                avs.append(allowed_v)
            allowed0, allowed1 = avs
            if not (allowed0 | allowed1).all():
                continue
            if canonical:
                # Free child must be normal: value 0 on the all-zero row.
                if not allowed0[0]:
                    continue
                allowed1[0] = False
            forced = array_to_bits(allowed1 & ~allowed0)
            free_cells = np.flatnonzero(allowed0 & allowed1).tolist()
            emitted = 0
            for combo in range(1 << len(free_cells)):
                bits = forced
                for j, cell in enumerate(free_cells):
                    if (combo >> j) & 1:
                        bits |= 1 << cell
                if not self._admissible_local(
                    bits, free_pos, gv_bits, nu, False
                ):
                    continue
                if swap:
                    yield (code, bits, pin)
                else:
                    yield (code, pin, bits)
                emitted += 1
                if emitted >= self._cap:
                    break


def _local_depends(bits: int, num_vars: int, var: int) -> bool:
    """Does a local table depend on local variable ``var``?"""
    mask = var_mask(var, num_vars)
    shift = 1 << var
    hi = (bits & mask) >> shift
    lo = bits & (mask >> shift)
    return hi != lo


_EXPAND_CACHE: dict[tuple[int, tuple[int, ...], int], int] = {}


def _expand_positions_cached(
    child_bits: int, positions: tuple[int, ...], nu: int
) -> int:
    """Expand a child-local table onto the union-local row space."""
    key = (child_bits, positions, nu)
    out = _EXPAND_CACHE.get(key)
    if out is None:
        out = expand_positions(child_bits, positions, nu)
        _EXPAND_CACHE[key] = out
    return out
