"""NPN-indexed database of optimal chains.

The practical consumer of exact synthesis (rewriting, technology
mapping) synthesizes each NPN *class representative* once and serves
every orbit member by transforming the stored chain — permuting and
complementing its inputs and complementing its output, all absorbed
into the 2-LUT gate codes.  This module provides both pieces: the
chain-level NPN transform and a lazily-filled database.
"""

from __future__ import annotations

from typing import Callable

from ..cache import get_cache
from ..chain.chain import BooleanChain
from ..chain.transform import npn_transform_chain
from ..runtime.errors import BudgetExceeded
from ..truthtable.table import TruthTable
from .spec import SynthesisResult

__all__ = ["apply_transform_to_chain", "NPNDatabase"]

#: The chain-level NPN transform now lives with the other chain
#: rewrites; this module keeps its historic name as an alias.
apply_transform_to_chain = npn_transform_chain


class NPNDatabase:
    """Lazily-filled map from NPN classes to optimal chain sets.

    ``lookup(f)`` canonicalizes ``f``, synthesizes the representative
    on first sight, and returns chains *for f itself* by transforming
    the stored solutions.

    Population is **deadline-aware**: each class gets its own
    wall-clock budget, runs through the fault-tolerant executor
    (default fallback chain: STP factorization → CNF fence solver),
    and a class that exhausts its budget or crashes every engine is
    recorded in :attr:`skipped` — ``lookup`` then returns an empty
    list for that orbit instead of aborting the whole population run
    with an unhandled :class:`TimeoutError`.

    Parameters
    ----------
    synthesizer:
        Optional explicit engine (any object with the standard
        ``synthesize(function, timeout=...)`` signature); it replaces
        the default fallback chain.
    timeout:
        Per-class wall-clock budget in seconds.
    executor:
        Optional pre-configured
        :class:`~repro.runtime.executor.FaultTolerantExecutor`;
        overrides ``synthesizer``.
    """

    def __init__(
        self,
        synthesizer=None,
        timeout: float | None = 120.0,
        executor=None,
    ) -> None:
        from ..runtime.executor import FaultTolerantExecutor

        if executor is not None:
            self._executor = executor
        elif synthesizer is not None:
            self._executor = FaultTolerantExecutor(
                engines=[
                    (
                        "custom",
                        lambda f, t: synthesizer.synthesize(f, timeout=t),
                    )
                ],
            )
        else:
            self._executor = FaultTolerantExecutor(
                engines=("stp", "fen"),
                engine_kwargs={"stp": {"max_solutions": 64}},
            )
        self._timeout = timeout
        self._store: dict[tuple[int, int], SynthesisResult] = {}
        #: Per-class failure records keyed like the store; values are
        #: :class:`~repro.runtime.executor.ExecutionOutcome`.
        self.skipped: dict[tuple[int, int], object] = {}

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, function: TruthTable) -> list[BooleanChain]:
        """All stored optimal chains, re-expressed for ``function``.

        Returns an empty list when the class representative could not
        be synthesized within its budget; the failure is recorded in
        :attr:`skipped` (and cached, so repeated lookups of a hopeless
        orbit don't re-burn the budget).
        """
        rep, transform = get_cache().npn_canonical(function)
        key = (rep.bits, rep.num_vars)
        result = self._store.get(key)
        if result is None:
            if key in self.skipped:
                return []
            outcome = self._executor.run(rep, timeout=self._timeout)
            if not outcome.solved:
                self.skipped[key] = outcome
                return []
            result = outcome.result
            self._store[key] = result
        # chain computes rep; we need f = transform.inverse()(rep).
        inverse = transform.inverse()
        chains = [
            apply_transform_to_chain(chain, inverse)
            for chain in result.chains
        ]
        return chains

    def optimal_size(self, function: TruthTable) -> int:
        """Gate count of the class optimum (fills the cache).

        Raises :class:`BudgetExceeded` when the class was skipped —
        an unknown optimum must not masquerade as a number.
        """
        rep, _ = get_cache().npn_canonical(function)
        key = (rep.bits, rep.num_vars)
        if key not in self._store:
            self.lookup(function)
        if key not in self._store:
            outcome = self.skipped[key]
            raise BudgetExceeded(
                f"class 0x{rep.to_hex()} skipped "
                f"({getattr(outcome, 'status', 'unknown')}); "
                "optimum unknown",
                budget=self._timeout,
            )
        return self._store[key].num_gates

    def precompute(
        self,
        classes: list[TruthTable],
        progress: Callable[[int, int], None] | None = None,
    ) -> None:
        """Fill the database for a list of class representatives.

        Classes whose budget expires are recorded in :attr:`skipped`
        and the run continues — an interrupted or slow class never
        aborts population.
        """
        for index, rep in enumerate(classes):
            self.lookup(rep)
            if progress is not None:
                progress(index + 1, len(classes))
