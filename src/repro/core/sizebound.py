"""Lower bounds on exact chain size, used as search prunes.

Any function depending on ``s`` variables needs at least ``s - 1``
2-input gates.  For supports up to 3 we use the *exact* minimal sizes
instead: the table below holds the minimal number of 2-input gates
(over the ten both-input-dependent operators) for every 3-variable
function, precomputed once with the CNF-based reference synthesizer
and verified by ``tests/test_sizebound.py``.  A demand of support 3
placed on a 2-gate cone is thereby rejected immediately instead of
being searched.  Minimal sizes are lower bounds in every context — a
sub-cone of a larger chain can never realise a function below its
exact minimal size — so the prune is sound.
"""

from __future__ import annotations

from ..truthtable.table import TruthTable

__all__ = ["min_gates_lower_bound", "exact_min_gates_upto3", "EXACT3_SIZES"]

#: ``EXACT3_SIZES[bits]`` = minimal gate count of the 3-input function
#: with truth table ``bits`` (0x00..0xFF); the worst case is 4 gates.
_EXACT3_STRING = (
    "0221212222121220212222443333332222123333242432321220332232321331"
    "223312332432243212332022321332312432321342242432243232312432323223"
    "232342132323422342422431232342132331232202332123422342332133221331"
    "232322330221232342423333212222333333442222120221212222121220"
)

EXACT3_SIZES: tuple[int, ...] = tuple(int(c) for c in _EXACT3_STRING)

assert len(EXACT3_SIZES) == 256


def exact_min_gates_upto3(table: TruthTable) -> int | None:
    """Exact minimal gate count for functions of support <= 3, else None.

    The input may live over any number of variables; only its support
    matters.
    """
    support = table.support()
    if len(support) > 3:
        return None
    if len(support) <= 1:
        return 0
    local = table
    for v in reversed(range(table.num_vars)):
        if v not in support:
            local = local.remove_vacuous_variable(v)
    local = local.extend(3)
    return EXACT3_SIZES[local.bits]


def min_gates_lower_bound(table: TruthTable) -> int:
    """Best available lower bound on the minimal 2-input chain size."""
    exact = exact_min_gates_upto3(table)
    if exact is not None:
        return exact
    return len(table.support()) - 1
