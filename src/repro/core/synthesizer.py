"""STP-based exact synthesis (Section III main loop).

:class:`STPSynthesizer` implements the paper's algorithm:

(i)   start from the lower bound ``r = support - 1`` on the gate count,
(ii)  generate the pruned DAG topology families for ``r`` gates
      (Section III-A),
(iii) assign operators to DAG vertices by STP matrix factorization of
      the target's canonical form (Section III-B) — a top-down
      backtracking search over per-node demanded functions,
(iv)  verify each complete candidate with the STP circuit AllSAT
      solver and simulation (Section III-C),

and returns *all* optimal Boolean chains found at the first feasible
``r`` — each expressed as 2-LUTs so downstream cost models can pick.

The algorithm itself lives in :mod:`repro.core.pipeline` as composable
stages over a shared :class:`~repro.core.context.SynthesisContext`;
this class is the stable object-style front door that maps its
constructor knobs onto a :class:`~repro.core.spec.SynthesisSpec` and
runs the stage sequence.
"""

from __future__ import annotations

from typing import Sequence

from ..chain.chain import BooleanChain
from ..truthtable.operations import NONTRIVIAL_BINARY_OPS
from ..truthtable.table import TruthTable
from .context import SynthesisContext
from .pipeline import canonicalize_dont_cares, dedup_chains, run_pipeline
from .spec import SynthesisResult, SynthesisSpec

__all__ = ["STPSynthesizer", "synthesize", "synthesize_all"]

# Compatibility aliases: these helpers predate the pipeline module and
# are imported under their old private names elsewhere in the codebase.
_canonicalize_dont_cares = canonicalize_dont_cares
_dedup = dedup_chains


class STPSynthesizer:
    """Exact synthesizer driven by the STP circuit solver.

    Parameters mirror :class:`~repro.core.spec.SynthesisSpec`; a
    synthesizer instance is reusable across functions.
    """

    def __init__(
        self,
        operators: Sequence[int] = NONTRIVIAL_BINARY_OPS,
        verify: bool = True,
        all_solutions: bool = True,
        max_solutions: int = 10_000,
        max_gates: int | None = None,
        canonicalize_dont_cares: bool = True,
        npn_canonicalize: bool = False,
    ) -> None:
        self._operators = tuple(operators)
        self._verify = verify
        self._all_solutions = all_solutions
        self._max_solutions = max_solutions
        self._max_gates = max_gates
        self._canonicalize = canonicalize_dont_cares
        self._npn_canonicalize = npn_canonicalize

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def synthesize(
        self,
        function: TruthTable,
        timeout: float | None = None,
        ctx: SynthesisContext | None = None,
    ) -> SynthesisResult:
        """Synthesize all optimal chains for ``function``.

        Raises :class:`~repro.runtime.errors.BudgetExceeded` (a
        :class:`TimeoutError`) when the budget expires and
        :class:`~repro.runtime.errors.SynthesisInfeasible` (a
        :class:`RuntimeError`) when the gate cap is hit.
        """
        spec = SynthesisSpec(
            function=function,
            operators=self._operators,
            max_gates=self._max_gates,
            timeout=timeout,
            all_solutions=self._all_solutions,
            verify=self._verify,
            max_solutions=self._max_solutions,
            canonicalize_dont_cares=self._canonicalize,
            npn_canonicalize=self._npn_canonicalize,
        )
        return self.run(spec, ctx=ctx)

    def run(
        self, spec: SynthesisSpec, ctx: SynthesisContext | None = None
    ) -> SynthesisResult:
        """Synthesize according to an explicit spec.

        A caller-supplied context shares its deadline, stats, and cache
        with the run; otherwise a fresh context is created from the
        spec's timeout and the process-global cache.
        """
        return run_pipeline(spec, ctx)


def synthesize(
    function: TruthTable,
    timeout: float | None = None,
    **kwargs,
) -> SynthesisResult:
    """One-call exact synthesis returning the full optimal set."""
    return STPSynthesizer(**kwargs).synthesize(function, timeout=timeout)


def synthesize_all(
    function: TruthTable, timeout: float | None = None, **kwargs
) -> list[BooleanChain]:
    """All optimal chains of a function (convenience wrapper)."""
    return synthesize(function, timeout=timeout, **kwargs).chains
