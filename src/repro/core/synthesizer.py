"""STP-based exact synthesis (Section III main loop).

:class:`STPSynthesizer` implements the paper's algorithm:

(i)   start from the lower bound ``r = support - 1`` on the gate count,
(ii)  generate the pruned DAG topology families for ``r`` gates
      (Section III-A),
(iii) assign operators to DAG vertices by STP matrix factorization of
      the target's canonical form (Section III-B) — a top-down
      backtracking search over per-node demanded functions,
(iv)  verify each complete candidate with the STP circuit AllSAT
      solver and simulation (Section III-C),

and returns *all* optimal Boolean chains found at the first feasible
``r`` — each expressed as 2-LUTs so downstream cost models can pick.

Functions are synthesized over their functional support; vacuous
variables are reattached afterwards, so NPN class representatives with
shrunken support work out of the box.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from ..chain.chain import BooleanChain
from ..chain.transform import flip_signal
from ..runtime.errors import SynthesisInfeasible
from ..topology.dag import DagTopology, enumerate_dags
from ..topology.fence import valid_fences
from ..truthtable.operations import NONTRIVIAL_BINARY_OPS
from ..truthtable.table import TruthTable, projection
from .circuit_sat import verify_chain
from .factorization import FactorizationEngine
from .sizebound import min_gates_lower_bound
from .spec import Deadline, SynthesisResult, SynthesisSpec, SynthesisStats

__all__ = ["STPSynthesizer", "synthesize", "synthesize_all"]

#: Cross-run cache of size lower bounds, keyed by (table bits, arity).
_BOUND_CACHE: dict[tuple[int, int], int] = {}


class STPSynthesizer:
    """Exact synthesizer driven by the STP circuit solver.

    Parameters mirror :class:`~repro.core.spec.SynthesisSpec`; a
    synthesizer instance is reusable across functions.
    """

    def __init__(
        self,
        operators: Sequence[int] = NONTRIVIAL_BINARY_OPS,
        verify: bool = True,
        all_solutions: bool = True,
        max_solutions: int = 10_000,
        max_gates: int | None = None,
        canonicalize_dont_cares: bool = True,
    ) -> None:
        self._operators = tuple(operators)
        self._verify = verify
        self._all_solutions = all_solutions
        self._max_solutions = max_solutions
        self._max_gates = max_gates
        self._canonicalize = canonicalize_dont_cares

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def synthesize(
        self, function: TruthTable, timeout: float | None = None
    ) -> SynthesisResult:
        """Synthesize all optimal chains for ``function``.

        Raises :class:`~repro.runtime.errors.BudgetExceeded` (a
        :class:`TimeoutError`) when the budget expires and
        :class:`~repro.runtime.errors.SynthesisInfeasible` (a
        :class:`RuntimeError`) when the gate cap is hit.
        """
        spec = SynthesisSpec(
            function=function,
            operators=self._operators,
            max_gates=self._max_gates,
            timeout=timeout,
            all_solutions=self._all_solutions,
            verify=self._verify,
            max_solutions=self._max_solutions,
        )
        return self.run(spec)

    def run(self, spec: SynthesisSpec) -> SynthesisResult:
        """Synthesize according to an explicit spec."""
        start = time.perf_counter()
        deadline = Deadline(spec.timeout)
        stats = SynthesisStats()

        trivial = self._trivial_chain(spec.function)
        if trivial is not None:
            return SynthesisResult(
                spec, [trivial], 0, time.perf_counter() - start, stats
            )

        support = spec.function.support()
        local, _ = _shrink_to_support(spec.function, support)
        s = len(support)

        chains: list[BooleanChain] = []
        num_gates = 0
        engine = FactorizationEngine(
            s, spec.operators,
            max_solutions_per_query=spec.max_solutions,
            deadline=deadline,
        )
        for r in range(max(1, s - 1), spec.effective_max_gates() + 1):
            found = self._solve_at_size(
                local, r, engine, spec, stats, deadline
            )
            if found:
                chains = found
                num_gates = r
                break
        else:
            raise SynthesisInfeasible(
                f"no chain with up to {spec.effective_max_gates()} gates "
                f"found for 0x{spec.function.to_hex()}"
            )

        lifted = [
            _lift_chain(c, spec.function.num_vars, support) for c in chains
        ]
        lifted = _dedup(lifted)
        return SynthesisResult(
            spec, lifted, num_gates, time.perf_counter() - start, stats
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _trivial_chain(self, f: TruthTable) -> BooleanChain | None:
        """Zero-gate realisations: constants and (inverted) projections."""
        n = f.num_vars
        support = f.support()
        if not support:
            chain = BooleanChain(n)
            chain.set_output(BooleanChain.CONST0, complemented=bool(f.bits & 1))
            return chain
        if len(support) == 1:
            var = support[0]
            chain = BooleanChain(n)
            complemented = f.value(0) == 1  # f == ~x_var
            chain.set_output(var, complemented)
            return chain
        return None

    def _solve_at_size(
        self,
        f: TruthTable,
        r: int,
        engine: FactorizationEngine,
        spec: SynthesisSpec,
        stats: SynthesisStats,
        deadline: Deadline,
    ) -> list[BooleanChain]:
        """All optimal chains with exactly ``r`` gates (empty if none).

        The search runs in *normal form*: every internal non-output
        signal is pinned to a function that is 0 on the all-zero input
        (the canonical polarity of the factorization engine).  Each
        polarity orbit of solutions has exactly one normal member, so
        the full solution set is the normal set expanded by all
        ``2^(r-1)`` internal-signal complementations.
        """
        s = f.num_vars
        normal_solutions: list[BooleanChain] = []
        seen: set[tuple] = set()
        # Each normal solution expands into 2^(r-1) polarity variants,
        # so the normal-form search can stop well before the cap.
        normal_cap = max(1, -(-spec.max_solutions // (1 << max(0, r - 1))))
        for fence in valid_fences(r):
            stats.fences_examined += 1
            for dag in enumerate_dags(fence, s, require_all_pis=True):
                stats.dags_examined += 1
                deadline.check()
                for chain in _assign_operators(
                    dag, f, engine, deadline
                ):
                    stats.candidates_generated += 1
                    if spec.verify:
                        stats.candidates_verified += 1
                        if not verify_chain(chain, f):
                            stats.verification_failures += 1
                            continue
                    key = chain.signature()
                    if key in seen:
                        continue
                    seen.add(key)
                    normal_solutions.append(chain)
                    if not spec.all_solutions:
                        return normal_solutions
                    if len(normal_solutions) >= normal_cap:
                        return self._expand_polarities(
                            normal_solutions, f, spec, deadline
                        )
        if not normal_solutions:
            return []
        return self._expand_polarities(
            normal_solutions, f, spec, deadline
        )

    def _expand_polarities(
        self,
        normal_solutions: list[BooleanChain],
        f: TruthTable,
        spec: SynthesisSpec,
        deadline: Deadline,
    ) -> list[BooleanChain]:
        """Blow the normal-form solutions up to the full optimal set by
        complementing internal (non-output) signals."""
        expanded: list[BooleanChain] = []
        seen: set[tuple] = set()
        for base in normal_solutions:
            output_signal = base.outputs[0][0]
            flippable = [
                base.num_inputs + i
                for i in range(base.num_gates)
                if base.num_inputs + i != output_signal
            ]
            for combo in range(1 << len(flippable)):
                deadline.check(every=32)
                variant = base
                for j, signal in enumerate(flippable):
                    if (combo >> j) & 1:
                        variant = flip_signal(variant, signal)
                if combo and variant.simulate_output() != f:
                    raise AssertionError(
                        "polarity variant changed the function"
                    )
                if self._canonicalize:
                    variant = _canonicalize_dont_cares(variant)
                key = variant.signature()
                if key in seen:
                    continue
                seen.add(key)
                expanded.append(variant)
                if len(expanded) >= spec.max_solutions:
                    return expanded
        return expanded


def _assign_operators(
    dag: DagTopology,
    f: TruthTable,
    engine: FactorizationEngine,
    deadline: Deadline,
) -> Iterator[BooleanChain]:
    """Section III-B: assign a 2-LUT to every pDAG vertex by repeated
    STP factorization, top node first.

    Two sound prunes keep the backtracking shallow:

    * a demanded function whose support exceeds the fanin cones cannot
      be factorized (checked inside the engine), and
    * a demand of support ``s`` placed on a signal whose cone contains
      ``m`` gates is infeasible when ``m < s - 1`` (every 2-input chain
      needs at least ``support - 1`` gates).
    """
    n = dag.num_pis
    num_nodes = dag.num_nodes

    # Per-signal reachable PIs (sorted tuples) and cone gate counts.
    cone_sets: list[frozenset[int]] = [frozenset((i,)) for i in range(n)]
    gate_sets: list[frozenset[int]] = [frozenset() for _ in range(n)]
    for i, (a, b) in enumerate(dag.fanins):
        cone_sets.append(cone_sets[a] | cone_sets[b])
        gate_sets.append(gate_sets[a] | gate_sets[b] | {n + i})
    cones = [tuple(sorted(c)) for c in cone_sets]
    cone_gates = [len(g) for g in gate_sets]

    demands: dict[int, TruthTable] = {dag.top_signal: f}
    ops: list[int | None] = [None] * num_nodes
    pi_tables = [projection(i, n) for i in range(n)]

    def fixed_of(signal: int) -> TruthTable | None:
        if signal < n:
            return pi_tables[signal]
        return demands.get(signal)

    def feasible(signal: int, demand: TruthTable) -> bool:
        key = (demand.bits, n)
        bound = _BOUND_CACHE.get(key)
        if bound is None:
            bound = min_gates_lower_bound(demand)
            _BOUND_CACHE[key] = bound
        return bound <= cone_gates[signal]

    def pick_node(pending: set[int]) -> int:
        """Most-constrained-first ordering: nodes whose fanins are both
        fixed are pure consistency checks and fail fastest; prefer one
        fixed fanin next; fall back to the highest (topmost) node."""
        best = -1
        best_score = -1
        for node in pending:
            a, b = dag.fanins[node]
            score = 4 * (
                (a < n or a in demanded_signals)
                + (b < n or b in demanded_signals)
            ) + (node / num_nodes)
            if score > best_score:
                best_score = score
                best = node
        return best

    demanded_signals: set[int] = {dag.top_signal}

    def rec(pending: set[int]) -> Iterator[BooleanChain]:
        if not pending:
            chain = BooleanChain(n)
            for i, (a, b) in enumerate(dag.fanins):
                chain.add_gate(ops[i], (a, b))
            chain.set_output(dag.top_signal)
            yield chain
            return
        deadline.check(every=64)
        node = pick_node(pending)
        pending.discard(node)
        signal = n + node
        g_v = demands[signal]
        a, b = dag.fanins[node]
        fixed_a = fixed_of(a)
        fixed_b = fixed_of(b)
        for fac in engine.decompositions(
            g_v, cones[a], cones[b], fixed_a, fixed_b
        ):
            new_a = fixed_a is None
            new_b = fixed_b is None
            if new_a and not feasible(a, fac.g_a):
                continue
            if new_b and not feasible(b, fac.g_b):
                continue
            if new_a:
                demands[a] = fac.g_a
                demanded_signals.add(a)
                pending.add(a - n)
            if new_b:
                demands[b] = fac.g_b
                demanded_signals.add(b)
                pending.add(b - n)
            ops[node] = fac.op
            yield from rec(pending)
            ops[node] = None
            if new_a:
                del demands[a]
                demanded_signals.discard(a)
                pending.discard(a - n)
            if new_b:
                del demands[b]
                demanded_signals.discard(b)
                pending.discard(b - n)
        pending.add(node)

    if feasible(dag.top_signal, f):
        yield from rec({num_nodes - 1})


def _shrink_to_support(
    f: TruthTable, support: tuple[int, ...]
) -> tuple[TruthTable, tuple[int, ...]]:
    """Project onto the functional support (local var i = support[i])."""
    local = f
    for v in reversed(range(f.num_vars)):
        if v not in support:
            local = local.remove_vacuous_variable(v)
    return local, support


def _lift_chain(
    chain: BooleanChain, num_vars: int, support: tuple[int, ...]
) -> BooleanChain:
    """Re-express a support-local chain over the original inputs."""
    s = len(support)
    lifted = BooleanChain(num_vars)

    def remap(signal: int) -> int:
        if signal == BooleanChain.CONST0:
            return signal
        if signal < s:
            return support[signal]
        return num_vars + (signal - s)

    for gate in chain.gates:
        lifted.add_gate(gate.op, tuple(remap(f) for f in gate.fanins))
    for signal, complemented in chain.outputs:
        lifted.set_output(remap(signal), complemented)
    return lifted


def _canonicalize_dont_cares(chain: BooleanChain) -> BooleanChain:
    """Zero every LUT row no input assignment can exercise.

    Factorizations through shared variables (power-reduce don't-cares,
    Property 3) leave some gate-code rows unconstrained, so chains that
    behave identically can differ in unobservable LUT bits.  Forcing
    those bits to 0 gives each behaviour a single representative.
    """
    tables = chain.simulate_signals()
    fixed = BooleanChain(chain.num_inputs)
    for gate in chain.gates:
        reachable = 0
        child = [tables[f] for f in gate.fanins]
        for m in range(1 << chain.num_inputs):
            row = 0
            for i, t in enumerate(child):
                row |= t.value(m) << i
            reachable |= 1 << row
        fixed.add_gate(gate.op & reachable, gate.fanins)
    for signal, complemented in chain.outputs:
        fixed.set_output(signal, complemented)
    return fixed


def _dedup(chains: list[BooleanChain]) -> list[BooleanChain]:
    seen: set[tuple] = set()
    unique = []
    for chain in chains:
        key = chain.signature()
        if key not in seen:
            seen.add(key)
            unique.append(chain)
    return unique


def synthesize(
    function: TruthTable,
    timeout: float | None = None,
    **kwargs,
) -> SynthesisResult:
    """One-call exact synthesis returning the full optimal set."""
    return STPSynthesizer(**kwargs).synthesize(function, timeout=timeout)


def synthesize_all(
    function: TruthTable, timeout: float | None = None, **kwargs
) -> list[BooleanChain]:
    """All optimal chains of a function (convenience wrapper)."""
    return synthesize(function, timeout=timeout, **kwargs).chains
