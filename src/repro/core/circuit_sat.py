"""STP circuit-based AllSAT solver (Section III-C, Algorithms 1–2).

The solver answers: *which primary-input assignments drive the chain's
outputs to their target values?* — working directly on the circuit
(2-LUT structural matrices) instead of a CNF translation.

Following Algorithm 2, a node with target ``T`` looks up the rows of
its structural matrix that evaluate to ``T``; each row dictates a
target pair for the two children, which are traversed recursively down
to the primary inputs.  Partial solutions are *cubes* — per-PI values
``0``/``1``/unassigned (the paper's ``'-'``) — and the ``MERGE`` step
combines cube sets pairwise, dropping contradicting pairs.  Because a
traversal assigns every PI in the node's cone, cube-level consistency
coincides with circuit-level consistency even for reconvergent
circuits.

The paper uses this solver to validate candidate chains coming out of
matrix factorization (whose power-reduce steps introduce don't-care
entries): enumerate all solutions for output target 1, simulate the
solution set into a function ``f_s`` and accept iff ``f_s == f``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..chain.chain import BooleanChain
from ..truthtable.table import TruthTable

__all__ = [
    "Cube",
    "merge_cubes",
    "merge_cube_sets",
    "chain_all_sat",
    "cubes_to_onset",
    "simulate_solutions",
    "verify_chain",
]

#: A partial PI assignment: one entry per primary input, ``None`` = '-'.
Cube = tuple

_FREE = None


def merge_cubes(c1: Cube, c2: Cube) -> Cube | None:
    """Combine two cubes; None when they assign some PI differently."""
    merged = []
    for v1, v2 in zip(c1, c2):
        if v1 is _FREE:
            merged.append(v2)
        elif v2 is _FREE or v1 == v2:
            merged.append(v1)
        else:
            return None
    return tuple(merged)


def merge_cube_sets(
    set1: Iterable[Cube], set2: Iterable[Cube]
) -> set[Cube]:
    """The paper's MERGE: pairwise combination, conflicts dropped."""
    result: set[Cube] = set()
    list2 = list(set2)
    for c1 in set1:
        for c2 in list2:
            merged = merge_cubes(c1, c2)
            if merged is not None:
                result.add(merged)
    return result


def _traverse(
    chain: BooleanChain,
    signal: int,
    target: int,
    memo: dict[tuple[int, int], frozenset[Cube]],
) -> frozenset[Cube]:
    """Algorithm 2: all PI cubes driving ``signal`` to ``target``."""
    key = (signal, target)
    cached = memo.get(key)
    if cached is not None:
        return cached
    n = chain.num_inputs
    if chain.is_input(signal):
        cube = tuple(
            target if i == signal else _FREE for i in range(n)
        )
        result = frozenset((cube,))
        memo[key] = result
        return result
    gate = chain.gate(signal)
    solutions: set[Cube] = set()
    arity = gate.arity
    for row in range(1 << arity):
        if ((gate.op >> row) & 1) != target:
            continue
        # Row dictates one target per child; merge child cube sets.
        partial: set[Cube] = {tuple([_FREE] * n)}
        for i, fanin in enumerate(gate.fanins):
            child_target = (row >> i) & 1
            child_cubes = _traverse(chain, fanin, child_target, memo)
            partial = merge_cube_sets(partial, child_cubes)
            if not partial:
                break
        solutions.update(partial)
    result = frozenset(solutions)
    memo[key] = result
    return result


def chain_all_sat(
    chain: BooleanChain, targets: Sequence[int] | None = None
) -> set[Cube]:
    """Algorithm 1: cubes driving every output to its target.

    ``targets`` defaults to all-1 (every PO satisfied).  Output
    complement flags are folded into the propagated target.
    """
    outputs = chain.outputs
    if not outputs:
        raise ValueError("chain has no outputs")
    if targets is None:
        targets = [1] * len(outputs)
    if len(targets) != len(outputs):
        raise ValueError("one target per output required")

    memo: dict[tuple[int, int], frozenset[Cube]] = {}
    n = chain.num_inputs
    solutions: set[Cube] = {tuple([_FREE] * n)}
    for (signal, complemented), target in zip(outputs, targets):
        node_target = target ^ int(complemented)
        po_cubes = _traverse(chain, signal, node_target, memo)
        solutions = merge_cube_sets(solutions, po_cubes)
        if not solutions:
            break
    return solutions


def cubes_to_onset(cubes: Iterable[Cube], num_inputs: int) -> int:
    """Expand a cube set into a bitmask of satisfied minterms."""
    onset = 0
    for cube in cubes:
        free = [i for i, v in enumerate(cube) if v is _FREE]
        base = 0
        for i, v in enumerate(cube):
            if v == 1:
                base |= 1 << i
        for combo in range(1 << len(free)):
            row = base
            for j, var in enumerate(free):
                if (combo >> j) & 1:
                    row |= 1 << var
            onset |= 1 << row
    return onset


def simulate_solutions(
    cubes: Iterable[Cube], num_inputs: int
) -> TruthTable:
    """The function ``f_s`` whose onset is the solution set."""
    return TruthTable(cubes_to_onset(cubes, num_inputs), num_inputs)


def verify_chain(chain: BooleanChain, target: TruthTable) -> bool:
    """Step (iv) of the paper's algorithm: the chain is a valid
    realisation iff AllSAT(output=1) expands exactly to the onset of
    the target function."""
    if target.num_vars != chain.num_inputs:
        raise ValueError("arity mismatch between chain and target")
    cubes = chain_all_sat(chain)
    return cubes_to_onset(cubes, chain.num_inputs) == target.bits
