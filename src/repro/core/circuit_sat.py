"""STP circuit-based AllSAT solver (Section III-C, Algorithms 1–2).

The solver answers: *which primary-input assignments drive the chain's
outputs to their target values?* — working directly on the circuit
(2-LUT structural matrices) instead of a CNF translation.

Following Algorithm 2, a node with target ``T`` looks up the rows of
its structural matrix that evaluate to ``T``; each row dictates a
target pair for the two children, which are traversed recursively down
to the primary inputs.  Partial solutions are *cubes* — per-PI values
``0``/``1``/unassigned (the paper's ``'-'``) — and the ``MERGE`` step
combines cube sets pairwise, dropping contradicting pairs.  Because a
traversal assigns every PI in the node's cone, cube-level consistency
coincides with circuit-level consistency even for reconvergent
circuits.

The paper uses this solver to validate candidate chains coming out of
matrix factorization (whose power-reduce steps introduce don't-care
entries): enumerate all solutions for output target 1, simulate the
solution set into a function ``f_s`` and accept iff ``f_s == f``.

This module is the *tuple API* over the bit-parallel kernel layer: the
traversal, MERGE, and onset expansion all run on packed two-plane
integer cubes (:mod:`repro.kernels`); the functions here keep their
historical tuple-cube signatures and convert at the boundary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..chain.chain import BooleanChain
from ..kernels import (
    chain_onset,
    chain_output_onsets,
    merge_packed_sets,
    pack_cube,
    pack_cubes,
    packed_all_sat,
    packed_onset,
    unpack_cube,
    unpack_cubes,
)
from ..truthtable.table import TruthTable

__all__ = [
    "Cube",
    "merge_cubes",
    "merge_cube_sets",
    "chain_all_sat",
    "cubes_to_onset",
    "simulate_solutions",
    "verify_chain",
    "verify_chain_outputs",
]

#: A partial PI assignment: one entry per primary input, ``None`` = '-'.
Cube = tuple

_FREE = None


def merge_cubes(c1: Cube, c2: Cube) -> Cube | None:
    """Combine two cubes; None when they assign some PI differently."""
    n = len(c1)
    p1, p2 = pack_cube(c1), pack_cube(c2)
    merged = p1 | p2
    if merged & (merged >> n) & ((1 << n) - 1):
        return None
    return unpack_cube(merged, n)


def merge_cube_sets(
    set1: Iterable[Cube], set2: Iterable[Cube]
) -> set[Cube]:
    """The paper's MERGE: pairwise combination, conflicts dropped."""
    list1 = list(set1)
    list2 = list(set2)
    if not list1 or not list2:
        return set()
    n = len(list1[0])
    merged = merge_packed_sets(pack_cubes(list1), pack_cubes(list2), n)
    return unpack_cubes(merged, n)


def chain_all_sat(
    chain: BooleanChain, targets: Sequence[int] | None = None
) -> set[Cube]:
    """Algorithm 1: cubes driving every output to its target.

    ``targets`` defaults to all-1 (every PO satisfied).  Output
    complement flags are folded into the propagated target.
    """
    packed = packed_all_sat(chain, targets)
    return unpack_cubes(packed, chain.num_inputs)


def cubes_to_onset(cubes: Iterable[Cube], num_inputs: int) -> int:
    """Expand a cube set into a bitmask of satisfied minterms.

    Word-parallel: each free variable doubles the minterm set with one
    big-int shift-or (the kernel's subset-sum over free-bit positions)
    instead of enumerating ``2^free`` combinations in Python.
    """
    return packed_onset(pack_cubes(cubes), num_inputs)


def simulate_solutions(
    cubes: Iterable[Cube], num_inputs: int
) -> TruthTable:
    """The function ``f_s`` whose onset is the solution set."""
    return TruthTable(cubes_to_onset(cubes, num_inputs), num_inputs)


def verify_chain(chain: BooleanChain, target: TruthTable) -> bool:
    """Step (iv) of the paper's algorithm: the chain is a valid
    realisation iff AllSAT(output=1) expands exactly to the onset of
    the target function.  Runs entirely on packed cubes — no tuple
    round-trip."""
    if target.num_vars != chain.num_inputs:
        raise ValueError("arity mismatch between chain and target")
    return chain_onset(chain) == target.bits


def verify_chain_outputs(
    chain: BooleanChain, targets: Sequence[TruthTable]
) -> bool:
    """Multi-output verification: output ``j``'s AllSAT onset must
    expand exactly to ``targets[j]``.

    One packed traversal with a memo shared across outputs, so gates
    feeding several outputs are solved once.  A chain with the wrong
    output count never verifies (the spec's output list is part of the
    contract, not just the functions).
    """
    targets = list(targets)
    if len(targets) != len(chain.outputs):
        return False
    for target in targets:
        if target.num_vars != chain.num_inputs:
            raise ValueError("arity mismatch between chain and target")
    onsets = chain_output_onsets(chain)
    return all(
        onset == target.bits for onset, target in zip(onsets, targets)
    )
