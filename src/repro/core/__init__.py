"""The paper's primary contribution: STP-based exact synthesis —
matrix factorization, the circuit AllSAT solver, and the synthesizer."""

from .spec import (
    Deadline,
    SynthesisResult,
    SynthesisSpec,
    SynthesisStats,
    SynthStats,
)
from .context import SynthesisContext
from .factorization import Factorization, FactorizationEngine, is_complement_closed
from .circuit_sat import (
    chain_all_sat,
    cubes_to_onset,
    merge_cube_sets,
    merge_cubes,
    simulate_solutions,
    verify_chain,
    verify_chain_outputs,
)
from .pipeline import PipelineState, run_pipeline
from .synthesizer import STPSynthesizer, synthesize, synthesize_all
from .hierarchical import HierarchicalSynthesizer, hierarchical_synthesize
from .database import NPNDatabase, apply_transform_to_chain
from .sizebound import exact_min_gates_upto3, min_gates_lower_bound

__all__ = [
    "Deadline",
    "SynthesisResult",
    "SynthesisSpec",
    "SynthesisStats",
    "SynthStats",
    "SynthesisContext",
    "PipelineState",
    "run_pipeline",
    "Factorization",
    "FactorizationEngine",
    "is_complement_closed",
    "chain_all_sat",
    "cubes_to_onset",
    "merge_cube_sets",
    "merge_cubes",
    "simulate_solutions",
    "verify_chain",
    "verify_chain_outputs",
    "STPSynthesizer",
    "synthesize",
    "synthesize_all",
    "HierarchicalSynthesizer",
    "hierarchical_synthesize",
    "NPNDatabase",
    "apply_transform_to_chain",
    "exact_min_gates_upto3",
    "min_gates_lower_bound",
]
