"""Table I regenerator — the paper's whole evaluation as a CLI.

Prints the same columns as the paper's Table I for any subset of the
suites: per baseline (BMS, FEN, ABC) the mean solve time, timeout and
solved counts; for STP additionally the total time, the mean time per
solution and the average number of solutions.

Pure-Python engines are 1–3 orders of magnitude slower than the
paper's C++ (see EXPERIMENTS.md), so the default run uses scaled-down
instance counts and timeouts; ``--full`` restores the paper's sizes.

Examples::

    python -m repro.bench.table1 --suite npn4 --count 20 --timeout 60
    python -m repro.bench.table1 --suite fdsd6 fdsd8 --count 25
    python -m repro.bench.table1 --summary results.json
    python -m repro.bench.table1 --suite npn4 --jobs 4 --store chains.db
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .runner import SuiteReport, default_algorithms, run_suite
from .suites import SUITE_NAMES, SUITE_SIZES, get_suite

__all__ = ["main", "format_row", "print_table", "summarize"]

#: Scaled-down defaults (per suite) for laptop-speed pure-Python runs.
DEFAULT_COUNTS: dict[str, int] = {
    "npn4": 30,
    "fdsd6": 50,
    "fdsd8": 20,
    "pdsd6": 20,
    "pdsd8": 8,
}
DEFAULT_TIMEOUT = 60.0


def format_row(reports: Sequence[SuiteReport]) -> str:
    """One Table-I line: suite | per-algorithm columns | STP extras."""
    suite = reports[0].suite if reports else "?"
    cells = [f"{suite:7s}"]
    stp = None
    for report in reports:
        if report.algorithm == "STP":
            stp = report
            continue
        cells.append(
            f"{report.algorithm}: mean={report.mean_time:8.3f}s "
            f"#t/o={report.num_timeouts:3d} #ok={report.num_ok:4d}"
        )
    if stp is not None:
        cells.append(
            f"STP: total={stp.total_time:9.3f}s "
            f"mean={stp.mean_time:8.3f}s "
            f"mean/sol={stp.mean_time_per_solution:8.4f}s "
            f"#t/o={stp.num_timeouts:3d} #ok={stp.num_ok:4d} "
            f"number={stp.mean_solutions:6.1f}"
        )
    return " | ".join(cells)


def print_table(all_reports: dict[str, list[SuiteReport]]) -> None:
    """Print every collected suite row."""
    print("=" * 100)
    print("Table I — exact synthesis comparison (this reproduction)")
    print("=" * 100)
    for reports in all_reports.values():
        print(format_row(reports))
    print("=" * 100)


def summarize(all_reports: dict[str, list[SuiteReport]]) -> dict:
    """Headline metrics in the style of the paper's abstract: best
    speedup of STP over each baseline and the timeout reduction."""
    summary: dict = {"suites": {}, "headline": {}}
    best_speedup: dict[str, float] = {}
    timeout_reduction: dict[str, float] = {}
    for suite, reports in all_reports.items():
        by_name = {r.algorithm: r for r in reports}
        stp = by_name.get("STP")
        row: dict = {}
        for name, report in by_name.items():
            row[name] = {
                "mean_s": report.mean_time,
                "timeouts": report.num_timeouts,
                "ok": report.num_ok,
            }
            if name == "STP":
                row[name]["total_s"] = report.total_time
                row[name]["mean_per_solution_s"] = (
                    report.mean_time_per_solution
                )
                row[name]["mean_solutions"] = report.mean_solutions
        summary["suites"][suite] = row
        if stp is None or stp.mean_time != stp.mean_time:
            continue
        for name, report in by_name.items():
            if name == "STP":
                continue
            if stp.mean_time > 0 and report.mean_time == report.mean_time:
                speedup = report.mean_time / stp.mean_time
                best_speedup[name] = max(
                    best_speedup.get(name, 0.0), speedup
                )
            if report.num_timeouts:
                reduction = (
                    (report.num_timeouts - stp.num_timeouts)
                    / report.num_timeouts
                )
                timeout_reduction[name] = max(
                    timeout_reduction.get(name, 0.0), reduction
                )
    summary["headline"]["best_speedup_vs"] = best_speedup
    summary["headline"]["best_timeout_reduction_vs"] = timeout_reduction
    return summary


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also exposed as the ``repro-table1`` script)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table I."
    )
    parser.add_argument(
        "--suite",
        nargs="+",
        default=list(SUITE_NAMES),
        choices=SUITE_NAMES,
        help="suites to run (default: all five)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="instances per suite (default: scaled-down per-suite counts)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_TIMEOUT,
        help="per-instance timeout in seconds (paper: 180)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's instance counts and 180 s timeout",
    )
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["BMS", "FEN", "ABC", "STP"],
        help="subset of algorithms to run",
    )
    parser.add_argument(
        "--max-solutions",
        type=int,
        default=256,
        help="cap on STP's all-solutions set",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="suite generator seed"
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the summary JSON to this path",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="per-instance progress"
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="JSONL checkpoint path; completed instances are streamed "
        "here and replayed on restart (resume support)",
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        help="topology-cache persistence path; loaded before each "
        "suite and saved after, so resumed/repeated runs skip "
        "re-enumerating fence/DAG families",
    )
    parser.add_argument(
        "--isolate",
        action="store_true",
        help="run each instance in a killable worker process "
        "(hard timeouts)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run up to N instances concurrently through the batch "
        "scheduler (implies per-instance process isolation)",
    )
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        help="persistent chain-store path (SQLite); solved classes "
        "are served from the store and written back on miss",
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help="race each algorithm's engine lanes concurrently per "
        "instance (first verified exact answer wins); exhausted "
        "instances degrade to stored upper bounds",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per engine after a worker crash",
    )
    parser.add_argument(
        "--memory-limit-mb",
        type=int,
        default=None,
        help="per-worker RLIMIT_AS cap (requires --isolate)",
    )
    args = parser.parse_args(argv)

    wanted = {name.upper() for name in args.algorithms}
    algorithms = [
        a
        for a in default_algorithms(max_solutions=args.max_solutions)
        if a.name in wanted
    ]
    if not algorithms:
        parser.error(f"no known algorithms among {sorted(wanted)}")

    timeout = 180.0 if args.full else args.timeout
    all_reports: dict[str, list[SuiteReport]] = {}
    for suite_name in args.suite:
        if args.full:
            count = SUITE_SIZES[suite_name]
        elif args.count is not None:
            count = args.count
        else:
            count = DEFAULT_COUNTS[suite_name]
        functions = get_suite(suite_name, count, seed=args.seed)
        print(
            f"running {suite_name}: {len(functions)} instances, "
            f"timeout {timeout:.0f}s, algorithms "
            f"{[a.name for a in algorithms]}",
            file=sys.stderr,
        )
        try:
            reports = run_suite(
                suite_name,
                functions,
                algorithms,
                timeout,
                verbose=args.verbose,
                checkpoint_path=args.checkpoint,
                isolate=args.isolate,
                max_retries=args.retries,
                memory_limit_mb=args.memory_limit_mb,
                cache_path=args.cache,
                jobs=args.jobs,
                store_path=args.store,
                race=args.race,
            )
        except KeyboardInterrupt:
            print(
                "interrupted — completed instances are checkpointed"
                + (f" in {args.checkpoint}" if args.checkpoint else ""),
                file=sys.stderr,
            )
            return 130
        all_reports[suite_name] = reports
        if args.store:
            served = sum(r.num_store_hits for r in reports)
            print(
                f"chain store served {served} of "
                f"{sum(len(r.outcomes) for r in reports)} instances",
                file=sys.stderr,
            )

    print_table(all_reports)
    summary = summarize(all_reports)
    print(json.dumps(summary["headline"], indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
