"""The paper's five benchmark suites (Section IV).

* ``npn4``  — all 222 NPN classes of 4-input functions,
* ``fdsd6`` / ``fdsd8`` — fully DSD-decomposable functions,
* ``pdsd6`` / ``pdsd8`` — partially DSD-decomposable functions.

The NPN4 representatives are embedded below (orbit-minimal members, as
recomputed by :func:`repro.truthtable.npn.npn_classes`; the test suite
cross-checks the embedded list against a fresh enumeration).  The DSD
suites are regenerated deterministically from seeds — the paper's own
collections came from unpublished mapping runs, so ours are synthetic
equivalents (DESIGN.md §5).
"""

from __future__ import annotations

from ..truthtable.generate import fdsd_suite, pdsd_suite
from ..truthtable.table import TruthTable, from_hex

__all__ = ["NPN4_CLASSES_HEX", "npn4_suite", "get_suite", "SUITE_NAMES", "SUITE_SIZES"]

#: All 222 four-input NPN class representatives (orbit-minimal).
NPN4_CLASSES_HEX: tuple[str, ...] = (
    "0000,0001,0003,0006,0007,000f,0016,0017,0018,0019,001b,001e,001f,"
    "003c,003d,003f,0069,006b,006f,007e,007f,00ff,0116,0117,0118,0119,"
    "011a,011b,011e,011f,012c,012d,012f,013c,013d,013e,013f,0168,0169,"
    "016a,016b,016e,016f,017e,017f,0180,0181,0182,0183,0186,0187,0189,"
    "018b,018f,0196,0197,0198,0199,019a,019b,019e,019f,01a8,01a9,01aa,"
    "01ab,01ac,01ad,01ae,01af,01bc,01bd,01be,01bf,01e8,01e9,01ea,01eb,"
    "01ee,01ef,01fe,033c,033d,033f,0356,0357,0358,0359,035a,035b,035e,"
    "035f,0368,0369,036a,036b,036c,036d,036e,036f,037c,037d,037e,03c0,"
    "03c1,03c3,03c5,03c6,03c7,03cf,03d4,03d5,03d6,03d7,03d8,03d9,03db,"
    "03dc,03dd,03de,03fc,0660,0661,0662,0663,0666,0667,0669,066b,066f,"
    "0672,0673,0676,0678,0679,067a,067b,067e,0690,0691,0693,0696,0697,"
    "069f,06b0,06b1,06b2,06b3,06b4,06b5,06b6,06b7,06b9,06bd,06f0,06f1,"
    "06f2,06f6,06f9,0776,0778,0779,077a,077e,07b0,07b1,07b4,07b5,07b6,"
    "07bc,07e0,07e1,07e2,07e3,07e6,07e9,07f0,07f1,07f2,07f8,0ff0,1668,"
    "1669,166a,166b,166e,167e,1681,1683,1686,1687,1689,168b,168e,1696,"
    "1697,1698,1699,169a,169b,169e,16a9,16ac,16ad,16bc,16e9,177e,178e,"
    "1796,1798,179a,17ac,17e8,18e7,19e1,19e3,19e6,1bd8,1be4,1ee1,3cc3,"
    "6996"
).split(",")

#: Instance counts the paper uses per suite.
SUITE_SIZES: dict[str, int] = {
    "npn4": 222,
    "fdsd6": 1000,
    "fdsd8": 100,
    "pdsd6": 1000,
    "pdsd8": 100,
}

SUITE_NAMES: tuple[str, ...] = ("npn4", "fdsd6", "fdsd8", "pdsd6", "pdsd8")


def npn4_suite(count: int | None = None) -> list[TruthTable]:
    """The NPN4 suite (optionally truncated for scaled-down runs)."""
    tables = [from_hex(h, 4) for h in NPN4_CLASSES_HEX]
    if count is not None:
        tables = tables[:count]
    return tables


def get_suite(
    name: str, count: int | None = None, seed: int = 2023
) -> list[TruthTable]:
    """Instantiate a suite by name.

    ``count=None`` gives the paper's full instance count; smaller
    values subsample deterministically (first ``count`` instances).
    """
    key = name.lower()
    if key not in SUITE_SIZES:
        raise ValueError(
            f"unknown suite {name!r}; pick one of {SUITE_NAMES}"
        )
    size = count if count is not None else SUITE_SIZES[key]
    if key == "npn4":
        return npn4_suite(size)
    if key == "fdsd6":
        return fdsd_suite(6, size, seed=seed)
    if key == "fdsd8":
        return fdsd_suite(8, size, seed=seed)
    if key == "pdsd6":
        return pdsd_suite(6, size, seed=seed, prime_arity=3)
    return pdsd_suite(8, size, seed=seed, prime_arity=3)
