"""Benchmark runner: Table-I style measurements.

Runs a set of synthesis algorithms over a suite of functions with a
per-instance wall-clock timeout, validating every returned chain by
simulation, and aggregates the paper's columns: mean solve time over
solved instances, the number of timeouts, the number of instances
solved, and — for the all-solutions STP algorithm — total time, mean
time per solution, and the average solution count.

Every instance is executed through the fault-tolerant runtime
(:mod:`repro.runtime`), so a hung, crashed, or corrupt engine is
recorded as a per-instance outcome instead of aborting the suite.
With ``checkpoint_path`` set, outcomes stream to an append-only JSONL
log as they complete; re-running with the same path replays the
completed instances and executes only the unfinished ones — a
``KeyboardInterrupt`` therefore loses at most the instance that was
mid-flight.

``jobs > 1`` shards the remaining instances across the parallel batch
scheduler (:mod:`repro.parallel`): each instance runs in its own
isolated, rlimit-capped worker process with a hard wall-clock kill,
at most ``jobs`` alive at once.  Aggregate counters are byte-identical
to a sequential run; only timings (and the ``worker`` attribution)
differ.  With ``store_path``, every executor consults the persistent
chain store before synthesizing and writes optimal results back — a
warm store serves a repeated suite with zero new synthesis calls.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Sequence

from ..cache import get_cache
from ..core.spec import SynthesisResult
from ..engine import run_engine
from ..parallel.progress import ProgressReporter
from ..parallel.scheduler import BatchScheduler, BatchTask
from ..runtime.checkpoint import CheckpointLog, instance_key
from ..runtime.executor import ExecutionOutcome, FaultTolerantExecutor
from ..runtime.faults import FaultPlan
from ..truthtable.table import TruthTable

__all__ = [
    "Algorithm",
    "InstanceOutcome",
    "SuiteReport",
    "default_algorithms",
    "run_suite",
]

SynthesisFn = Callable[[TruthTable, float], SynthesisResult]


@dataclass(frozen=True)
class Algorithm:
    """A named synthesis engine adapter.

    ``engines`` names the runtime fallback chain (registry keys from
    :mod:`repro.runtime.engines`); when ``None`` the bare ``run``
    callable is executed in-process with no fallback.  ``engine_kwargs``
    carries per-engine tuning knobs across the chain.
    """

    name: str
    run: SynthesisFn
    all_solutions: bool = False
    engines: tuple[str, ...] | None = None
    engine_kwargs: dict | None = None


def default_algorithms(max_solutions: int = 256) -> list[Algorithm]:
    """The paper's four contenders: BMS, FEN, ABC(lutexact), STP.

    The STP contender carries the paper-motivated fallback chain
    (hierarchical STP engine, then the CNF fence baseline); the
    baselines run standalone.  Every ``run`` callable dispatches
    through the engine registry (:mod:`repro.engine`), so the bare
    in-process path and the named fallback-chain path exercise the
    same code.
    """
    stp_kwargs = {
        "hier": {"max_solutions": max_solutions, "all_solutions": True},
    }
    return [
        Algorithm("BMS", partial(run_engine, "bms"), engines=("bms",)),
        Algorithm("FEN", partial(run_engine, "fen"), engines=("fen",)),
        Algorithm(
            "ABC", partial(run_engine, "lutexact"), engines=("lutexact",)
        ),
        Algorithm(
            "STP",
            partial(
                run_engine,
                "hier",
                max_solutions=max_solutions,
                all_solutions=True,
            ),
            all_solutions=True,
            engines=("hier", "fen"),
            engine_kwargs=stp_kwargs,
        ),
    ]


@dataclass
class InstanceOutcome:
    """One (function, algorithm) measurement."""

    function_hex: str
    solved: bool
    runtime: float
    num_gates: int = -1
    num_solutions: int = 0
    error: str = ""
    status: str = ""
    engine: str = ""
    fallback_from: str | None = None
    cached: bool = False
    #: Dispatcher that ran the instance (-1: sequential / replayed).
    worker: int = -1
    #: False when the chain is a degraded upper bound, not an optimum.
    exact: bool = True
    #: Corrupt store rows quarantined while serving this instance.
    store_quarantined: int = 0
    #: JSON-safe per-run search/cache stats (``SynthesisStats.to_record``).
    stats: dict = field(default_factory=dict)

    def to_record(self, key: str) -> dict:
        """Checkpoint representation of this outcome."""
        return {
            "key": key,
            "function": self.function_hex,
            "solved": self.solved,
            "runtime": round(self.runtime, 6),
            "num_gates": self.num_gates,
            "num_solutions": self.num_solutions,
            "error": self.error,
            "status": self.status,
            "engine": self.engine,
            "fallback_from": self.fallback_from,
            "worker": self.worker,
            "exact": self.exact,
            "store_quarantined": self.store_quarantined,
            "stats": self.stats,
        }

    @classmethod
    def from_record(cls, record: dict) -> "InstanceOutcome":
        """Rehydrate a checkpointed outcome (marked ``cached``)."""
        return cls(
            function_hex=record.get("function", ""),
            solved=bool(record.get("solved", False)),
            runtime=float(record.get("runtime", 0.0)),
            num_gates=int(record.get("num_gates", -1)),
            num_solutions=int(record.get("num_solutions", 0)),
            error=record.get("error", ""),
            status=record.get("status", ""),
            engine=record.get("engine", ""),
            fallback_from=record.get("fallback_from"),
            cached=True,
            worker=int(record.get("worker", -1)),
            exact=bool(record.get("exact", True)),
            store_quarantined=int(record.get("store_quarantined", 0)),
            stats=record.get("stats", {}) or {},
        )


@dataclass
class SuiteReport:
    """Aggregated Table-I row for one algorithm on one suite."""

    algorithm: str
    suite: str
    outcomes: list[InstanceOutcome] = field(default_factory=list)

    @property
    def num_ok(self) -> int:
        """Instances solved before the timeout (#ok)."""
        return sum(1 for o in self.outcomes if o.solved)

    @property
    def num_timeouts(self) -> int:
        """Instances not solved in time (#t/o)."""
        return sum(1 for o in self.outcomes if not o.solved)

    @property
    def num_fallbacks(self) -> int:
        """Instances solved only after degrading to a fallback engine."""
        return sum(
            1 for o in self.outcomes if o.solved and o.fallback_from
        )

    @property
    def mean_time(self) -> float:
        """Mean runtime over solved instances (the paper's ``mean``)."""
        solved = [o.runtime for o in self.outcomes if o.solved]
        return sum(solved) / len(solved) if solved else float("nan")

    @property
    def total_time(self) -> float:
        """Total runtime over solved instances (STP's ``Total``)."""
        return sum(o.runtime for o in self.outcomes if o.solved)

    @property
    def mean_solutions(self) -> float:
        """Average number of solutions per solved instance."""
        solved = [o.num_solutions for o in self.outcomes if o.solved]
        return sum(solved) / len(solved) if solved else 0.0

    @property
    def mean_time_per_solution(self) -> float:
        """Mean time divided by the average solution count."""
        if not self.mean_solutions:
            return float("nan")
        return self.mean_time / self.mean_solutions

    @property
    def num_store_hits(self) -> int:
        """Instances served by the persistent chain store."""
        return sum(1 for o in self.outcomes if o.engine == "store")

    @property
    def num_degraded(self) -> int:
        """Instances served as a non-exact upper bound."""
        return sum(1 for o in self.outcomes if o.status == "degraded")

    def worker_summary(self) -> dict[int, dict]:
        """Per-worker fault/timeout accounting (parallel runs only).

        Keyed by dispatcher id; instances run sequentially or replayed
        from a checkpoint land under worker ``-1``.  ``store_hits`` /
        ``store_hit_seconds`` break out the instances each worker served
        straight from the persistent chain store and the wall-clock
        those served lookups cost; ``degraded`` counts upper-bound
        servings and ``store_quarantined`` the corrupt store rows the
        worker's lookups marked and skipped.
        """
        summary: dict[int, dict] = {}
        for outcome in self.outcomes:
            bucket = summary.setdefault(
                outcome.worker,
                {
                    "tasks": 0,
                    "solved": 0,
                    "timeouts": 0,
                    "crashes": 0,
                    "degraded": 0,
                    "store_hits": 0,
                    "store_hit_seconds": 0.0,
                    "store_quarantined": 0,
                },
            )
            bucket["tasks"] += 1
            if outcome.solved:
                bucket["solved"] += 1
            elif outcome.status == "degraded":
                bucket["degraded"] += 1
            elif outcome.status == "timeout" or not outcome.error:
                bucket["timeouts"] += 1
            else:
                bucket["crashes"] += 1
            if outcome.engine == "store":
                bucket["store_hits"] += 1
                bucket["store_hit_seconds"] += outcome.runtime
            bucket["store_quarantined"] += outcome.store_quarantined
        return summary


def run_suite(
    suite_name: str,
    functions: Sequence[TruthTable],
    algorithms: Iterable[Algorithm],
    timeout: float,
    verbose: bool = False,
    *,
    checkpoint_path: str | None = None,
    isolate: bool = False,
    fault_plan: FaultPlan | None = None,
    max_retries: int = 1,
    memory_limit_mb: int | None = None,
    cache_path: str | None = None,
    jobs: int = 1,
    store_path: str | None = None,
    race: bool = False,
) -> list[SuiteReport]:
    """Run every algorithm over every function; returns one report per
    algorithm.  Every returned chain is validated by simulation.

    With ``checkpoint_path``, completed instances are streamed to a
    JSONL log and replayed on restart, so only unfinished instances
    re-execute.  A ``KeyboardInterrupt`` propagates to the caller
    after the in-flight state is flushed; everything already measured
    is on disk.

    With ``cache_path``, the process-global synthesis cache (topology
    families) is loaded before the suite and saved after it, so
    resumed checkpoint runs and later suites skip re-enumerating the
    shared fence/DAG families.

    ``jobs > 1`` dispatches the unfinished instances of *all*
    algorithms through the batch scheduler; this implies process
    isolation (the parallelism lives in forked workers), so every
    algorithm needs a named engine chain.  ``store_path`` opens a
    persistent chain store consulted lookup-before-synthesize and
    written back on miss.

    ``race=True`` swaps every executor for a
    :class:`~repro.runtime.racing.RacingExecutor`: the algorithm's
    named engines run concurrently on each instance (first verified
    exact answer wins, losers are cancelled), a single
    health/breaker tracker is shared across the whole suite, and
    exhausted instances degrade to stored upper bounds (``status ==
    "degraded"``, ``exact=False``) instead of plain timeouts.
    Algorithms with a single named engine race the default lane set.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if cache_path:
        get_cache().load(cache_path)
    store = None
    if store_path:
        from ..store import ChainStore

        store = ChainStore(store_path)
    log = CheckpointLog(checkpoint_path) if checkpoint_path else None
    done = log.load() if log is not None else {}
    algorithms = list(algorithms)
    health = None
    if race:
        from ..runtime.health import EngineHealth

        health = EngineHealth()
    try:
        if jobs > 1:
            return _run_suite_parallel(
                suite_name,
                functions,
                algorithms,
                timeout,
                jobs,
                verbose=verbose,
                log=log,
                done=done,
                fault_plan=fault_plan,
                max_retries=max_retries,
                memory_limit_mb=memory_limit_mb,
                store=store,
                race=race,
                health=health,
            )
        reports = []
        for algorithm in algorithms:
            executor = _executor_for(
                algorithm,
                isolate=isolate,
                fault_plan=fault_plan,
                max_retries=max_retries,
                memory_limit_mb=memory_limit_mb,
                store=store,
                race=race,
                health=health,
            )
            report = SuiteReport(algorithm.name, suite_name)
            reports.append(report)
            for function in functions:
                key = instance_key(
                    suite_name, algorithm.name, function.to_hex()
                )
                record = done.get(key)
                if record is not None:
                    outcome = InstanceOutcome.from_record(record)
                else:
                    # KeyboardInterrupt propagates from here: completed
                    # instances are already streamed to the log, so only
                    # the in-flight instance is lost (and re-runs later).
                    outcome = _run_instance(executor, function, timeout)
                    if log is not None:
                        log.append(outcome.to_record(key))
                report.outcomes.append(outcome)
                if verbose:
                    _print_progress(algorithm.name, outcome)
        return reports
    finally:
        if cache_path:
            get_cache().save(cache_path)
        if store is not None:
            store.close()


def _run_suite_parallel(
    suite_name: str,
    functions: Sequence[TruthTable],
    algorithms: Sequence[Algorithm],
    timeout: float,
    jobs: int,
    *,
    verbose: bool,
    log: CheckpointLog | None,
    done: dict,
    fault_plan: FaultPlan | None,
    max_retries: int,
    memory_limit_mb: int | None,
    store,
    race: bool = False,
    health=None,
) -> list[SuiteReport]:
    """Scheduler-backed suite execution (see :func:`run_suite`)."""
    executors = {
        algorithm.name: _executor_for(
            algorithm,
            isolate=True,
            fault_plan=fault_plan,
            max_retries=max_retries,
            memory_limit_mb=memory_limit_mb,
            store=store,
            race=race,
            health=health,
        )
        for algorithm in algorithms
    }
    # One deterministic slot per (algorithm, function); checkpointed
    # slots are pre-filled, the rest become scheduler tasks.
    prefilled: dict[int, InstanceOutcome] = {}
    tasks: list[BatchTask] = []
    slot = 0
    for algorithm in algorithms:
        for function in functions:
            key = instance_key(
                suite_name, algorithm.name, function.to_hex()
            )
            record = done.get(key)
            if record is not None:
                prefilled[slot] = InstanceOutcome.from_record(record)
            else:
                tasks.append(
                    BatchTask(
                        index=slot,
                        algorithm=algorithm.name,
                        function=function,
                        timeout=timeout,
                        key=key,
                    )
                )
            slot += 1

    completed: dict[int, InstanceOutcome] = {}

    def on_complete(task: BatchTask, outcome, worker: int) -> None:
        instance = _to_instance_outcome(outcome, worker=worker)
        completed[task.index] = instance
        if log is not None:
            log.append(instance.to_record(task.key))

    progress = ProgressReporter(
        len(tasks), stream=sys.stderr if verbose else None
    )
    scheduler = BatchScheduler(
        executors,
        jobs,
        progress=progress,
        on_complete=on_complete,
    )
    # KeyboardInterrupt propagates from here; everything completed is
    # checkpointed via on_complete already.
    scheduler.run(tasks)

    reports = []
    slot = 0
    for algorithm in algorithms:
        report = SuiteReport(algorithm.name, suite_name)
        reports.append(report)
        for _function in functions:
            outcome = prefilled.get(slot) or completed.get(slot)
            if outcome is None:  # pragma: no cover - scheduler contract
                raise RuntimeError(f"slot {slot} never completed")
            report.outcomes.append(outcome)
            slot += 1
    return reports


def _executor_for(
    algorithm: Algorithm,
    *,
    isolate: bool,
    fault_plan: FaultPlan | None,
    max_retries: int,
    memory_limit_mb: int | None,
    store=None,
    race: bool = False,
    health=None,
):
    if race:
        from ..runtime.racing import DEFAULT_RACE_ENGINES, RacingExecutor

        if algorithm.engines is None:
            raise ValueError(
                f"algorithm {algorithm.name!r} has no named engine "
                "chain and cannot be raced"
            )
        lanes = algorithm.engines
        if len(lanes) < 2:
            # A single lane is not a race; widen to the default set
            # (keeping the algorithm's engine in front).
            lanes = tuple(
                dict.fromkeys(lanes + DEFAULT_RACE_ENGINES)
            )
        return RacingExecutor(
            lanes,
            health=health,
            store=store,
            fault_plan=fault_plan,
            memory_limit_mb=memory_limit_mb,
            engine_kwargs=algorithm.engine_kwargs,
        )
    if algorithm.engines is not None:
        engines: Sequence = algorithm.engines
    else:
        engines = [(algorithm.name.lower(), algorithm.run)]
        if isolate:
            raise ValueError(
                f"algorithm {algorithm.name!r} has no named engine "
                "chain and cannot be process-isolated"
            )
    return FaultTolerantExecutor(
        engines,
        isolate=isolate,
        max_retries=max_retries,
        memory_limit_mb=memory_limit_mb,
        fault_plan=fault_plan,
        engine_kwargs=algorithm.engine_kwargs,
        store=store,
    )


def _run_instance(
    executor: FaultTolerantExecutor,
    function: TruthTable,
    timeout: float,
) -> InstanceOutcome:
    outcome = executor.run(function, timeout)
    return _to_instance_outcome(outcome)


def _to_instance_outcome(
    outcome: ExecutionOutcome, worker: int = -1
) -> InstanceOutcome:
    if outcome.solved:
        result = outcome.result
        return InstanceOutcome(
            outcome.function_hex,
            True,
            outcome.runtime,
            num_gates=result.num_gates,
            num_solutions=result.num_solutions,
            status="ok",
            engine=outcome.engine,
            fallback_from=outcome.fallback_from,
            worker=worker,
            exact=outcome.exact,
            store_quarantined=outcome.store_quarantined,
            stats=result.stats.to_record(),
        )
    if outcome.degraded:
        # Racing's graceful degradation: a verified upper bound was
        # served; solved stays False (exactness was not established)
        # but the chain's size is still worth recording.
        result = outcome.result
        return InstanceOutcome(
            outcome.function_hex,
            False,
            outcome.runtime,
            num_gates=result.num_gates,
            num_solutions=result.num_solutions,
            error=outcome.error,
            status="degraded",
            engine=outcome.engine,
            fallback_from=outcome.fallback_from,
            worker=worker,
            exact=False,
            store_quarantined=outcome.store_quarantined,
        )
    return InstanceOutcome(
        outcome.function_hex,
        False,
        outcome.runtime,
        error=outcome.error,
        status=outcome.status,
        engine=outcome.engine,
        fallback_from=outcome.fallback_from,
        worker=worker,
        exact=outcome.exact,
        store_quarantined=outcome.store_quarantined,
    )


def _print_progress(name: str, outcome: InstanceOutcome) -> None:
    if outcome.solved:
        status = f"{outcome.runtime:.3f}s g={outcome.num_gates}"
        if outcome.fallback_from:
            status += (
                f" [{outcome.engine}, fell back from "
                f"{outcome.fallback_from}]"
            )
    elif outcome.status == "degraded":
        status = (
            f"degraded: upper bound g<={outcome.num_gates} "
            f"[{outcome.engine}]"
        )
    elif outcome.error:
        status = f"{outcome.status or 't/o'} ({outcome.error})"
    else:
        status = outcome.status or "t/o"
    print(f"  [{name}] 0x{outcome.function_hex}: {status}")
