"""Benchmark runner: Table-I style measurements.

Runs a set of synthesis algorithms over a suite of functions with a
per-instance wall-clock timeout, validating every returned chain by
simulation, and aggregates the paper's columns: mean solve time over
solved instances, the number of timeouts, the number of instances
solved, and — for the all-solutions STP algorithm — total time, mean
time per solution, and the average solution count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..baselines.bms import BMSSynthesizer
from ..baselines.fence_synth import FenceSynthesizer
from ..baselines.lutexact import LutExactSynthesizer
from ..core.hierarchical import HierarchicalSynthesizer
from ..core.spec import SynthesisResult
from ..truthtable.table import TruthTable

__all__ = [
    "Algorithm",
    "InstanceOutcome",
    "SuiteReport",
    "default_algorithms",
    "run_suite",
]

SynthesisFn = Callable[[TruthTable, float], SynthesisResult]


@dataclass(frozen=True)
class Algorithm:
    """A named synthesis engine adapter."""

    name: str
    run: SynthesisFn
    all_solutions: bool = False


def default_algorithms(max_solutions: int = 256) -> list[Algorithm]:
    """The paper's four contenders: BMS, FEN, ABC(lutexact), STP."""
    bms = BMSSynthesizer()
    fen = FenceSynthesizer()
    lut = LutExactSynthesizer()
    stp = HierarchicalSynthesizer(
        all_solutions=True, max_solutions=max_solutions
    )
    return [
        Algorithm("BMS", lambda f, t: bms.synthesize(f, timeout=t)),
        Algorithm("FEN", lambda f, t: fen.synthesize(f, timeout=t)),
        Algorithm("ABC", lambda f, t: lut.synthesize(f, timeout=t)),
        Algorithm(
            "STP",
            lambda f, t: stp.synthesize(f, timeout=t),
            all_solutions=True,
        ),
    ]


@dataclass
class InstanceOutcome:
    """One (function, algorithm) measurement."""

    function_hex: str
    solved: bool
    runtime: float
    num_gates: int = -1
    num_solutions: int = 0
    error: str = ""


@dataclass
class SuiteReport:
    """Aggregated Table-I row for one algorithm on one suite."""

    algorithm: str
    suite: str
    outcomes: list[InstanceOutcome] = field(default_factory=list)

    @property
    def num_ok(self) -> int:
        """Instances solved before the timeout (#ok)."""
        return sum(1 for o in self.outcomes if o.solved)

    @property
    def num_timeouts(self) -> int:
        """Instances not solved in time (#t/o)."""
        return sum(1 for o in self.outcomes if not o.solved)

    @property
    def mean_time(self) -> float:
        """Mean runtime over solved instances (the paper's ``mean``)."""
        solved = [o.runtime for o in self.outcomes if o.solved]
        return sum(solved) / len(solved) if solved else float("nan")

    @property
    def total_time(self) -> float:
        """Total runtime over solved instances (STP's ``Total``)."""
        return sum(o.runtime for o in self.outcomes if o.solved)

    @property
    def mean_solutions(self) -> float:
        """Average number of solutions per solved instance."""
        solved = [o.num_solutions for o in self.outcomes if o.solved]
        return sum(solved) / len(solved) if solved else 0.0

    @property
    def mean_time_per_solution(self) -> float:
        """Mean time divided by the average solution count."""
        if not self.mean_solutions:
            return float("nan")
        return self.mean_time / self.mean_solutions


def run_suite(
    suite_name: str,
    functions: Sequence[TruthTable],
    algorithms: Iterable[Algorithm],
    timeout: float,
    verbose: bool = False,
) -> list[SuiteReport]:
    """Run every algorithm over every function; returns one report per
    algorithm.  Every returned chain is validated by simulation."""
    reports = []
    for algorithm in algorithms:
        report = SuiteReport(algorithm.name, suite_name)
        for function in functions:
            outcome = _run_instance(algorithm, function, timeout)
            report.outcomes.append(outcome)
            if verbose:
                status = (
                    f"{outcome.runtime:.3f}s g={outcome.num_gates}"
                    if outcome.solved
                    else f"t/o ({outcome.error})" if outcome.error else "t/o"
                )
                print(
                    f"  [{algorithm.name}] 0x{outcome.function_hex}: {status}"
                )
        reports.append(report)
    return reports


def _run_instance(
    algorithm: Algorithm, function: TruthTable, timeout: float
) -> InstanceOutcome:
    start = time.perf_counter()
    try:
        result = algorithm.run(function, timeout)
    except TimeoutError:
        return InstanceOutcome(
            function.to_hex(), False, time.perf_counter() - start
        )
    except Exception as exc:  # pragma: no cover - defensive reporting
        return InstanceOutcome(
            function.to_hex(),
            False,
            time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    runtime = time.perf_counter() - start
    for chain in result.chains:
        if chain.simulate_output() != function:
            return InstanceOutcome(
                function.to_hex(),
                False,
                runtime,
                error="invalid chain returned",
            )
    return InstanceOutcome(
        function.to_hex(),
        True,
        runtime,
        num_gates=result.num_gates,
        num_solutions=result.num_solutions,
    )
