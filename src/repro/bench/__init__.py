"""Benchmark suites, runner and the Table I regenerator."""

from .runner import Algorithm, InstanceOutcome, SuiteReport, default_algorithms, run_suite
from .suites import NPN4_CLASSES_HEX, SUITE_NAMES, SUITE_SIZES, get_suite, npn4_suite

__all__ = [
    "Algorithm",
    "InstanceOutcome",
    "SuiteReport",
    "default_algorithms",
    "run_suite",
    "NPN4_CLASSES_HEX",
    "SUITE_NAMES",
    "SUITE_SIZES",
    "get_suite",
    "npn4_suite",
]
