"""Packed cube representation and the bit-parallel MERGE/expand kernels.

A cube (partial PI assignment) over ``n`` inputs is packed into a
single integer holding two bit planes::

    packed = ones | (zeros << n)

``ones`` has bit ``i`` set when the cube assigns ``x_i = 1``; ``zeros``
has bit ``i`` set when it assigns ``x_i = 0``; a PI assigned by neither
plane is free (the paper's ``'-'``).  The encoding makes the MERGE
step of the circuit AllSAT solver a pair of word operations:

* merged cube: ``t = c1 | c2`` (union of assignments in both planes);
* conflict:    ``t & (t >> n) & full != 0`` — some PI is assigned 1 by
  one cube and 0 by the other iff its bit is set in *both* planes.

Pairwise merging over two cube sets is a cross product; small products
(the common case on 4–5 input chains) run as a Python set
comprehension over ints, large ones switch to a broadcast NumPy int64
path with ``np.unique`` dedupe.  The NumPy path needs both planes in
one int64, i.e. ``n <= 31``; wider chains simply stay on the
big-int path, which has no width limit.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from .stats import KERNEL_STATS

__all__ = [
    "pack_cube",
    "unpack_cube",
    "pack_cubes",
    "unpack_cubes",
    "merge_packed_sets",
    "packed_onset",
]

#: Cross products at least this large take the NumPy broadcast path.
_VECTOR_THRESHOLD = 4096

#: Widest chain whose packed cubes fit an int64 (two n-bit planes).
_NUMPY_MAX_INPUTS = 31


def pack_cube(cube: Sequence[int | None]) -> int:
    """Pack a tuple cube (entries ``0``/``1``/``None``) into two planes."""
    n = len(cube)
    packed = 0
    for i, v in enumerate(cube):
        if v == 1:
            packed |= 1 << i
        elif v == 0:
            packed |= 1 << (i + n)
    return packed


def unpack_cube(packed: int, num_inputs: int) -> tuple:
    """Inverse of :func:`pack_cube`."""
    return tuple(
        1
        if (packed >> i) & 1
        else (0 if (packed >> (i + num_inputs)) & 1 else None)
        for i in range(num_inputs)
    )


def pack_cubes(cubes: Iterable[Sequence[int | None]]) -> list[int]:
    """Pack a cube collection."""
    return [pack_cube(c) for c in cubes]


def unpack_cubes(packed: Iterable[int], num_inputs: int) -> set[tuple]:
    """Unpack a packed cube collection into the tuple API's set form."""
    return {unpack_cube(p, num_inputs) for p in packed}


def merge_packed_sets(
    set1: Sequence[int], set2: Sequence[int], num_inputs: int
) -> list[int]:
    """The paper's MERGE on packed cubes: pairwise union, conflicts
    dropped, result deduplicated."""
    KERNEL_STATS.count("cube_merge")
    n = num_inputs
    full = (1 << n) - 1
    if (
        len(set1) * len(set2) >= _VECTOR_THRESHOLD
        and n <= _NUMPY_MAX_INPUTS
    ):
        a1 = np.fromiter(set1, dtype=np.int64, count=len(set1))
        a2 = np.fromiter(set2, dtype=np.int64, count=len(set2))
        t = a1[:, None] | a2[None, :]
        keep = (t & (t >> n) & full) == 0
        return np.unique(t[keep]).tolist()
    return list(
        {
            t
            for c1 in set1
            for c2 in set2
            if not ((t := c1 | c2) & (t >> n) & full)
        }
    )


def packed_onset(packed_cubes: Iterable[int], num_inputs: int) -> int:
    """Expand packed cubes into the bitmask of satisfied minterms.

    Word-parallel subset-sum over the free-bit positions: starting from
    the single minterm fixed by the ones plane, each free variable
    doubles the minterm set with ``m |= m << (1 << var)`` — the row
    increment of a free variable *is* a shift amount — replacing the
    exponential per-combination Python loop.
    """
    t0 = time.perf_counter()
    full = (1 << num_inputs) - 1
    onset = 0
    for c in packed_cubes:
        m = 1 << (c & full)
        b = ~(c | (c >> num_inputs)) & full  # free-variable positions
        while b:
            w = b & -b
            m |= m << w
            b &= b - 1
        onset |= m
    KERNEL_STATS.add("cube_onset", time.perf_counter() - t0)
    return onset
