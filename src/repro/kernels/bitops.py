"""Shared bit-array plumbing for the kernel layer.

Truth tables and cube planes live as arbitrary-width Python integers
throughout the repo; the vectorized kernels need the same data as NumPy
arrays.  The converters here go through ``int.to_bytes`` /
``np.unpackbits`` so the cost is one memcpy, not a per-bit Python loop.

The cached index maps are the workhorse of every gather-based kernel:

* :func:`collapse_indices` — for each row ``m`` of a wide space, the
  row of a narrow space read off positions ``positions`` of ``m``
  (``idx[m] = Σ_i ((m >> positions[i]) & 1) << i``).  Gathering a local
  table through it *expands* the table onto the wide space; gathering a
  permuted table through a permutation realises the permutation.
* :func:`spread_indices` — the embedding direction: for each row ``α``
  of the narrow space, the wide row with ``α``'s bits scattered to
  ``positions`` (``idx[α] = Σ_i ((α >> i) & 1) << positions[i]``).

Both are ``lru_cache``-d per ``(positions, width)``; callers must treat
the returned arrays as immutable.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "bits_to_array",
    "array_to_bits",
    "collapse_indices",
    "spread_indices",
    "var_mask",
]


def bits_to_array(bits: int, size: int) -> np.ndarray:
    """The low ``size`` bits of an integer as a uint8 0/1 array."""
    nbytes = max(1, (size + 7) >> 3)
    buf = bits.to_bytes(nbytes, "little")
    return np.unpackbits(
        np.frombuffer(buf, dtype=np.uint8), bitorder="little"
    )[:size]


def array_to_bits(arr: np.ndarray) -> int:
    """Pack a 0/1 (or boolean) array back into an integer, bit i = arr[i]."""
    packed = np.packbits(
        np.asarray(arr, dtype=np.uint8) & 1, bitorder="little"
    )
    return int.from_bytes(packed.tobytes(), "little")


@lru_cache(maxsize=None)
def collapse_indices(positions: tuple[int, ...], width: int) -> np.ndarray:
    """``idx[m] = Σ_i ((m >> positions[i]) & 1) << i`` over ``2**width`` rows."""
    rows = np.arange(1 << width, dtype=np.int64)
    out = np.zeros(1 << width, dtype=np.int64)
    for i, p in enumerate(positions):
        out |= ((rows >> p) & 1) << i
    return out


@lru_cache(maxsize=None)
def spread_indices(positions: tuple[int, ...], width: int) -> np.ndarray:
    """``idx[α] = Σ_i ((α >> i) & 1) << positions[i]`` over the narrow rows."""
    alphas = np.arange(1 << len(positions), dtype=np.int64)
    out = np.zeros_like(alphas)
    for i, p in enumerate(positions):
        out |= ((alphas >> i) & 1) << p
    return out


@lru_cache(maxsize=None)
def var_mask(var: int, num_vars: int) -> int:
    """Mask of the truth-table rows in which ``x_var = 1``."""
    block = ((1 << (1 << var)) - 1) << (1 << var)
    mask = 0
    period = 1 << (var + 1)
    for start in range(0, 1 << num_vars, period):
        mask |= block << start
    return mask
