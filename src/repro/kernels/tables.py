"""Word-parallel truth-table kernels and batch NPN canonicalization.

Cofactor, variable-dependence, and flip kernels operate on the whole
bit-packed table with shift/mask words; permutation and NPN transform
application gather through cached row-index tables
(:func:`repro.kernels.bitops.collapse_indices` — the source row of
``g(m) = f(π(m) ^ flips)`` is a pure index function of ``m``, computed
once per ``(n, perm)``).

Exact NPN canonicalization evaluates *all* ``2·2^n·n!`` transforms of
a function in one shot: a cached ``(n!, 2^n)`` base-index matrix is
XOR-broadcast against every input-flip mask, the function is gathered
through the resulting index cube, rows are packed back to integers
with one matrix-vector product, and the orbit minimum is an
``argmin`` whose first-occurrence tie-breaking matches the sequential
enumeration order (permutation-major, then input flips, then output
polarity).
"""

from __future__ import annotations

import itertools
import time
from functools import lru_cache

import numpy as np

from .bitops import array_to_bits, bits_to_array, collapse_indices, var_mask
from .stats import KERNEL_STATS

__all__ = [
    "cofactor_bits",
    "depends_bits",
    "support_bits",
    "permute_bits",
    "npn_apply_bits",
    "npn_minimum",
    "npn_orbit",
]


def cofactor_bits(bits: int, num_vars: int, var: int, value: int) -> int:
    """Shannon cofactor on the packed table (fixed variable vacuous)."""
    KERNEL_STATS.count("tt_cofactor")
    masked = var_mask(var, num_vars)
    if value:
        hi = bits & masked
        return hi | (hi >> (1 << var))
    lo = bits & ~masked & ((1 << (1 << num_vars)) - 1)
    return lo | (lo << (1 << var))


def depends_bits(bits: int, num_vars: int, var: int) -> bool:
    """Functional dependence on ``x_var`` without building cofactors:
    some row with ``x_var = 0`` must differ from its ``x_var = 1``
    partner, i.e. ``(f ^ (f >> 2^var))`` hits the ``x_var = 0`` rows."""
    shift = 1 << var
    lo_rows = ~var_mask(var, num_vars) & ((1 << (1 << num_vars)) - 1)
    return bool((bits ^ (bits >> shift)) & lo_rows)


def support_bits(bits: int, num_vars: int) -> tuple[int, ...]:
    """Indices of the variables the function depends on."""
    KERNEL_STATS.count("tt_support")
    return tuple(
        v for v in range(num_vars) if depends_bits(bits, num_vars, v)
    )


def permute_bits(bits: int, num_vars: int, perm: tuple[int, ...]) -> int:
    """Input permutation via one cached index gather.

    ``perm[i] = j`` routes old variable ``x_i`` to new position
    ``x_j``; the new row ``m`` therefore reads the old row whose bit
    ``i`` is bit ``perm[i]`` of ``m`` — exactly
    ``collapse_indices(perm, n)``.
    """
    KERNEL_STATS.count("tt_permute")
    rows = bits_to_array(bits, 1 << num_vars)
    return array_to_bits(rows[collapse_indices(perm, num_vars)])


def npn_apply_bits(
    bits: int,
    num_vars: int,
    perm: tuple[int, ...],
    input_flips: int,
    output_flip: bool,
) -> int:
    """Apply one NPN transform: gather through the permutation index
    table XOR the flip mask, complement the output if asked."""
    KERNEL_STATS.count("npn_apply")
    rows = bits_to_array(bits, 1 << num_vars)
    src = collapse_indices(perm, num_vars) ^ input_flips
    out = rows[src]
    if output_flip:
        out = out ^ 1
    return array_to_bits(out)


@lru_cache(maxsize=8)
def _npn_transform_tables(
    num_vars: int,
) -> tuple[tuple[tuple[int, ...], ...], np.ndarray, np.ndarray, np.ndarray]:
    """Per-arity cache: the permutation list (itertools order), the
    ``(n!, 2^n)`` base source-index matrix, the flip masks, and the
    row-packing weights."""
    size = 1 << num_vars
    perms = tuple(itertools.permutations(range(num_vars)))
    bases = np.stack(
        [collapse_indices(perm, num_vars) for perm in perms]
    )
    flips = np.arange(1 << num_vars, dtype=np.int64)
    weights = (np.int64(1) << np.arange(size, dtype=np.int64)).astype(
        np.int64
    )
    return perms, bases, flips, weights


def _npn_candidates(bits: int, num_vars: int) -> np.ndarray:
    """Packed tables of every NPN transform of ``bits``, flattened in
    the enumeration order (perm-major, flips, output False/True)."""
    perms, bases, flips, weights = _npn_transform_tables(num_vars)
    rows = bits_to_array(bits, 1 << num_vars).astype(np.int64)
    # (n!, 2^n flips, 2^n rows) gather indices, then pack each row.
    gathered = rows[bases[:, None, :] ^ flips[None, :, None]]
    packed = gathered @ weights
    full = np.int64((1 << (1 << num_vars)) - 1)
    return np.stack([packed, packed ^ full], axis=-1).reshape(-1)


def npn_minimum(
    bits: int, num_vars: int
) -> tuple[int, tuple[int, ...], int, bool]:
    """Orbit minimum plus the first transform reaching it.

    Returns ``(min_bits, perm, input_flips, output_flip)``; the
    transform matches what the sequential first-strict-minimum scan
    over :func:`_all_transforms` would pick.
    """
    t0 = time.perf_counter()
    candidates = _npn_candidates(bits, num_vars)
    best = int(np.argmin(candidates))
    perms, _, _, _ = _npn_transform_tables(num_vars)
    flip_count = 1 << num_vars
    perm = perms[best // (flip_count * 2)]
    input_flips = (best // 2) % flip_count
    output_flip = bool(best & 1)
    KERNEL_STATS.add("npn_canonical", time.perf_counter() - t0)
    return int(candidates[best]), perm, input_flips, output_flip


def npn_orbit(bits: int, num_vars: int) -> set[int]:
    """The full NPN orbit of a function as a set of packed tables."""
    t0 = time.perf_counter()
    orbit = set(np.unique(_npn_candidates(bits, num_vars)).tolist())
    KERNEL_STATS.add("npn_canonical", time.perf_counter() - t0)
    return orbit
