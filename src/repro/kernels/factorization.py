"""Vectorized helpers for the STP matrix-factorization engine.

The factorization engine's per-query work is dominated by three index
chores, all of which reduce to cached-gather NumPy operations:

* :func:`index_maps` — the γ → (α, β) shape maps and, for disjoint
  cones, the inverse (α, β) → γ matrix;
* :func:`quartering_blocks` — the "two unique quartering parts" check's
  raw material: for every assignment α of the A-cone, the β-profile of
  ``g_v`` as one row of a bit matrix (group rows with
  ``np.unique(axis=0)``);
* :func:`localize_array` / :func:`expand_array` /
  :func:`expand_positions` — cone-local ↔ global truth-table moves.

2-input operator transforms (complementing either input or the output)
are precomputed 16-entry lookup tables instead of a per-row bit loop.
"""

from __future__ import annotations

import time

import numpy as np

from .bitops import (
    array_to_bits,
    bits_to_array,
    collapse_indices,
    spread_indices,
)
from .stats import KERNEL_STATS

__all__ = [
    "FLIP_INPUT0",
    "FLIP_INPUT1",
    "index_maps",
    "quartering_blocks",
    "localize_array",
    "expand_array",
    "expand_positions",
]

#: 2-input op code with the first input complemented (rows 0↔1, 2↔3).
FLIP_INPUT0 = tuple(
    ((code & 0b0101) << 1) | ((code & 0b1010) >> 1) for code in range(16)
)

#: 2-input op code with the second input complemented (rows 0↔2, 1↔3).
FLIP_INPUT1 = tuple(
    ((code & 0b0011) << 2) | ((code & 0b1100) >> 2) for code in range(16)
)


def index_maps(
    nu: int, a_pos: tuple[int, ...], b_pos: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray, bool, np.ndarray | None]:
    """Shape maps ``γ → (α, β)`` plus the disjoint inverse matrix.

    Returns ``(amap, bmap, disjoint, gamma_of)`` where ``amap[γ]`` /
    ``bmap[γ]`` are the child-row indices of joint row ``γ`` and —
    when the cones partition the union — ``gamma_of[α, β]`` is the
    joint row realising the pair.
    """
    KERNEL_STATS.count("fact_index_maps")
    amap = collapse_indices(a_pos, nu)
    bmap = collapse_indices(b_pos, nu)
    disjoint = (
        not (set(a_pos) & set(b_pos)) and len(a_pos) + len(b_pos) == nu
    )
    gamma_of = None
    if disjoint:
        gamma_of = np.empty(
            (1 << len(a_pos), 1 << len(b_pos)), dtype=np.int64
        )
        gamma_of[amap, bmap] = np.arange(1 << nu, dtype=np.int64)
    return amap, bmap, disjoint, gamma_of


def quartering_blocks(gv_bits: int, nu: int, gamma_of: np.ndarray) -> np.ndarray:
    """Column blocks of ``M_{g_v}`` grouped by the A-cone assignment.

    Row α of the result is the β-profile of ``g_v`` restricted to the
    columns where the A-cone takes assignment α — the quartering parts
    of Examples 5–6 as a ``(2^|A|, 2^|B|)`` 0/1 matrix.
    """
    t0 = time.perf_counter()
    blocks = bits_to_array(gv_bits, 1 << nu)[gamma_of]
    KERNEL_STATS.add("fact_quartering", time.perf_counter() - t0)
    return blocks


def localize_array(
    bits: int, vars_sorted: tuple[int, ...], num_vars: int
) -> tuple[np.ndarray, bool]:
    """Project a global table onto a cone.

    Returns the cone-local row values and a leak flag: the projection
    is faithful only when the function never reads outside the cone,
    checked by re-expanding the local table and comparing.
    """
    KERNEL_STATS.count("fact_localize")
    rows = bits_to_array(bits, 1 << num_vars)
    local = rows[spread_indices(vars_sorted, num_vars)]
    rebuilt = local[collapse_indices(vars_sorted, num_vars)]
    leak = not np.array_equal(rebuilt, rows)
    return local, leak


def expand_array(
    local_bits: int, vars_sorted: tuple[int, ...], num_vars: int
) -> int:
    """Expand a cone-local table onto the global row space."""
    KERNEL_STATS.count("fact_expand")
    local = bits_to_array(local_bits, 1 << len(vars_sorted))
    return array_to_bits(local[collapse_indices(vars_sorted, num_vars)])


def expand_positions(
    child_bits: int, positions: tuple[int, ...], nu: int
) -> int:
    """Expand a child-local table onto the union-local row space."""
    KERNEL_STATS.count("fact_expand")
    local = bits_to_array(child_bits, 1 << len(positions))
    return array_to_bits(local[collapse_indices(positions, nu)])
