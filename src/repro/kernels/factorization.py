"""Vectorized helpers for the STP matrix-factorization engine.

The factorization engine's per-query work is dominated by three index
chores, all of which reduce to cached-gather NumPy operations:

* :func:`index_maps` — the γ → (α, β) shape maps and, for disjoint
  cones, the inverse (α, β) → γ matrix;
* :func:`quartering_blocks` — the "two unique quartering parts" check's
  raw material: for every assignment α of the A-cone, the β-profile of
  ``g_v`` as one row of a bit matrix (group rows with
  ``np.unique(axis=0)``);
* :func:`localize_array` / :func:`expand_array` /
  :func:`expand_positions` — cone-local ↔ global truth-table moves.

2-input operator transforms (complementing either input or the output)
are precomputed 16-entry lookup tables instead of a per-row bit loop.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from .bitops import (
    array_to_bits,
    bits_to_array,
    collapse_indices,
    spread_indices,
)
from .stats import KERNEL_STATS, SampledTimer

__all__ = [
    "FLIP_INPUT0",
    "FLIP_INPUT1",
    "index_maps",
    "quartering_blocks",
    "quartering_blocks_batch",
    "quartering_profiles",
    "solve_disjoint_batch",
    "localize_array",
    "expand_array",
    "expand_positions",
]

#: 2-input op code with the first input complemented (rows 0↔1, 2↔3).
FLIP_INPUT0 = tuple(
    ((code & 0b0101) << 1) | ((code & 0b1010) >> 1) for code in range(16)
)

#: 2-input op code with the second input complemented (rows 0↔2, 1↔3).
FLIP_INPUT1 = tuple(
    ((code & 0b0011) << 2) | ((code & 0b1100) >> 2) for code in range(16)
)


def index_maps(
    nu: int, a_pos: tuple[int, ...], b_pos: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray, bool, np.ndarray | None]:
    """Shape maps ``γ → (α, β)`` plus the disjoint inverse matrix.

    Returns ``(amap, bmap, disjoint, gamma_of)`` where ``amap[γ]`` /
    ``bmap[γ]`` are the child-row indices of joint row ``γ`` and —
    when the cones partition the union — ``gamma_of[α, β]`` is the
    joint row realising the pair.
    """
    KERNEL_STATS.count("fact_index_maps")
    amap = collapse_indices(a_pos, nu)
    bmap = collapse_indices(b_pos, nu)
    disjoint = (
        not (set(a_pos) & set(b_pos)) and len(a_pos) + len(b_pos) == nu
    )
    gamma_of = None
    if disjoint:
        gamma_of = np.empty(
            (1 << len(a_pos), 1 << len(b_pos)), dtype=np.int64
        )
        gamma_of[amap, bmap] = np.arange(1 << nu, dtype=np.int64)
    return amap, bmap, disjoint, gamma_of


#: The quartering gather runs in ~2 µs; two ``perf_counter`` reads per
#: call used to cost as much as the gather itself, so the timer samples
#: one call in 64 and extrapolates (satellite of the batching rework).
_QUARTERING_TIMER = SampledTimer("fact_quartering", stride=64)


def quartering_blocks(gv_bits: int, nu: int, gamma_of: np.ndarray) -> np.ndarray:
    """Column blocks of ``M_{g_v}`` grouped by the A-cone assignment.

    Row α of the result is the β-profile of ``g_v`` restricted to the
    columns where the A-cone takes assignment α — the quartering parts
    of Examples 5–6 as a ``(2^|A|, 2^|B|)`` 0/1 matrix.
    """
    t0 = _QUARTERING_TIMER.start()
    blocks = bits_to_array(gv_bits, 1 << nu)[gamma_of]
    _QUARTERING_TIMER.stop(t0)
    return blocks


def quartering_profiles(
    gv_bits: int, nu: int, gamma_flat: list[int], size_a: int, size_b: int
) -> tuple[int, ...]:
    """Quartering parts as ``size_a`` packed β-profile ints.

    The pure-int twin of :func:`quartering_blocks`: entry α is the
    β-profile of ``g_v`` over the columns where the A-cone takes
    assignment α, packed LSB-first.  ``gamma_flat`` is the row-major
    flattening of the shape's ``gamma_of`` matrix; for the ≤16-row
    tables of the 4-input search the shift loop beats the NumPy gather
    (no array round-trip) and feeds the int-only solver directly.
    """
    t0 = _QUARTERING_TIMER.start()
    profiles = []
    pos = 0
    for _alpha in range(size_a):
        row = 0
        for beta in range(size_b):
            row |= ((gv_bits >> gamma_flat[pos]) & 1) << beta
            pos += 1
        profiles.append(row)
    _QUARTERING_TIMER.stop(t0)
    return tuple(profiles)


def _unpack_batch(gv_bits_seq: Sequence[int], size: int) -> np.ndarray:
    """Stack packed tables into one ``(K, size)`` 0/1 uint8 matrix."""
    nbytes = max(1, (size + 7) >> 3)
    buf = b"".join(int(b).to_bytes(nbytes, "little") for b in gv_bits_seq)
    rows = np.frombuffer(buf, dtype=np.uint8).reshape(
        len(gv_bits_seq), nbytes
    )
    return np.unpackbits(rows, axis=1, bitorder="little")[:, :size]


def quartering_blocks_batch(
    gv_bits_seq: Sequence[int], nu: int, gamma_of: np.ndarray
) -> np.ndarray:
    """Batched :func:`quartering_blocks`: one ``(K, 2^|A|, 2^|B|)``
    gather for a whole family of demanded functions over one shape."""
    t0 = time.perf_counter()
    blocks = _unpack_batch(gv_bits_seq, 1 << nu)[:, gamma_of]
    KERNEL_STATS.add(
        "fact_quartering_batch",
        time.perf_counter() - t0,
        n=len(gv_bits_seq),
    )
    return blocks


def solve_disjoint_batch(
    gv_bits_seq: Sequence[int],
    nu: int,
    gamma_of: np.ndarray,
    ops: Sequence[int],
    fixed_a_seq: Sequence[int] | None = None,
    fixed_b_seq: Sequence[int] | None = None,
    canonical: bool = True,
) -> list[list[tuple[int, int, int, int]]]:
    """Disjoint-cone factorization candidates for a whole demand batch.

    Stacks ``K`` demanded functions sharing one ``(|A|, |B|)`` cone
    shape into a single gather + grouping pass and scans the per-β
    allowed-value constraints vectorized across the batch.  For each
    input ``k`` the result holds ``(op_code, a_bits, forced_b,
    free_b_mask)`` descriptors: ``forced_b`` carries the B-cells pinned
    by the constraints and ``free_b_mask`` the cells both values
    satisfy (the caller expands those, applying admissibility prunes
    and solution caps — policy that stays out of the kernel layer).
    When ``fixed_b_seq`` is given the pinned child has already been
    validated and ``free_b_mask`` is 0.

    Descriptor order per ``k`` matches the scalar solver: candidate
    A-polarity first (normal, then complemented when ``canonical`` is
    false), operator code in ``ops`` order within each candidate.
    """
    t0 = time.perf_counter()
    size_a, size_b = gamma_of.shape
    K = len(gv_bits_seq)
    blocks = _unpack_batch(gv_bits_seq, 1 << nu)[:, gamma_of]
    pow_b = np.int64(1) << np.arange(size_b, dtype=np.int64)
    pow_a = np.int64(1) << np.arange(size_a, dtype=np.int64)
    profiles = blocks.astype(np.int64) @ pow_b  # (K, size_a)
    out: list[list[tuple[int, int, int, int]]] = [[] for _ in range(K)]
    full_a = (1 << size_a) - 1

    # Candidate (a_bits, c-profile, d-profile) per k, plus masks saying
    # whether each group is populated (a pinned child may put every α
    # in one group, leaving the other profile unconstrained).
    candidates: list[tuple[np.ndarray, ...]] = []
    if fixed_a_seq is None:
        d_val = profiles[:, 0]
        lo = profiles.min(axis=1)
        hi = profiles.max(axis=1)
        two = (lo != hi) & (
            (profiles == lo[:, None]) | (profiles == hi[:, None])
        ).all(axis=1)
        c_val = lo + hi - d_val
        a_bits = (profiles != d_val[:, None]) @ pow_a
        ones = np.ones(K, dtype=bool)
        candidates.append((two, a_bits, c_val, d_val, ones, ones))
        if not canonical:
            candidates.append(
                (two, full_a - a_bits, d_val, c_val, ones, ones)
            )
    else:
        fa = np.asarray(fixed_a_seq, dtype=np.int64)
        fa_arr = ((fa[:, None] >> np.arange(size_a)) & 1).astype(bool)
        has1 = fa_arr.any(axis=1)
        has0 = (~fa_arr).any(axis=1)
        rows = np.arange(K)
        c_val = profiles[rows, fa_arr.argmax(axis=1)]
        d_val = profiles[rows, (~fa_arr).argmax(axis=1)]
        uniform = (
            (profiles == c_val[:, None]) | ~fa_arr
        ).all(axis=1) & ((profiles == d_val[:, None]) | fa_arr).all(axis=1)
        candidates.append((uniform, fa, c_val, d_val, has1, has0))

    fb_arr = None
    if fixed_b_seq is not None:
        fb = np.asarray(fixed_b_seq, dtype=np.int64)
        fb_arr = ((fb[:, None] >> np.arange(size_b)) & 1).astype(bool)

    beta_range = np.arange(size_b)
    for viable, a_bits, c_val, d_val, has1, has0 in candidates:
        c_bits = ((c_val[:, None] >> beta_range) & 1).astype(np.uint8)
        d_bits = ((d_val[:, None] >> beta_range) & 1).astype(np.uint8)
        for code in ops:
            # B value v is allowed at β iff the c profile matches
            # φ(1, v) and the d profile matches φ(0, v) there.
            avs = []
            for v in (0, 1):
                ok = np.ones((K, size_b), dtype=bool)
                ok &= ~has1[:, None] | (
                    c_bits == ((code >> ((v << 1) | 1)) & 1)
                )
                ok &= ~has0[:, None] | (d_bits == ((code >> (v << 1)) & 1))
                avs.append(ok)
            allowed0, allowed1 = avs
            sat = viable & (allowed0 | allowed1).all(axis=1)
            forced_arr = allowed1 & ~allowed0
            if fb_arr is not None:
                free_arr = allowed0 & allowed1
                sat &= (free_arr | (fb_arr == forced_arr)).all(axis=1)
                for k in np.flatnonzero(sat):
                    out[k].append(
                        (code, int(a_bits[k]), int(fb[k]), 0)
                    )
            else:
                forced = forced_arr @ pow_b
                freem = (allowed0 & allowed1) @ pow_b
                for k in np.flatnonzero(sat):
                    out[k].append(
                        (
                            code,
                            int(a_bits[k]),
                            int(forced[k]),
                            int(freem[k]),
                        )
                    )
    KERNEL_STATS.add(
        "fact_quartering_batch", time.perf_counter() - t0, n=K
    )
    return out


def localize_array(
    bits: int, vars_sorted: tuple[int, ...], num_vars: int
) -> tuple[np.ndarray, bool]:
    """Project a global table onto a cone.

    Returns the cone-local row values and a leak flag: the projection
    is faithful only when the function never reads outside the cone,
    checked by re-expanding the local table and comparing.
    """
    KERNEL_STATS.count("fact_localize")
    rows = bits_to_array(bits, 1 << num_vars)
    local = rows[spread_indices(vars_sorted, num_vars)]
    rebuilt = local[collapse_indices(vars_sorted, num_vars)]
    leak = not np.array_equal(rebuilt, rows)
    return local, leak


def expand_array(
    local_bits: int, vars_sorted: tuple[int, ...], num_vars: int
) -> int:
    """Expand a cone-local table onto the global row space."""
    KERNEL_STATS.count("fact_expand")
    local = bits_to_array(local_bits, 1 << len(vars_sorted))
    return array_to_bits(local[collapse_indices(vars_sorted, num_vars)])


def expand_positions(
    child_bits: int, positions: tuple[int, ...], nu: int
) -> int:
    """Expand a child-local table onto the union-local row space."""
    KERNEL_STATS.count("fact_expand")
    local = bits_to_array(child_bits, 1 << len(positions))
    return array_to_bits(local[collapse_indices(positions, nu)])
