"""Reference (pre-kernel) pure-Python implementations.

Verbatim relocations of the tuple-cube AllSAT solver, the loop-based
quartering/column grouping, and the per-row truth-table manipulations
that the kernel layer replaced.  They exist for two reasons only:

* the randomized old-vs-new equivalence tests in
  ``tests/test_kernels.py`` compare every kernel against its original;
* ``benchmarks/bench_kernels.py`` measures the speedup against them,
  so ``BENCH_kernels_npn4.json`` records old *and* new timings.

Nothing in the synthesis path imports this module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "merge_cubes_ref",
    "merge_cube_sets_ref",
    "chain_all_sat_ref",
    "cubes_to_onset_ref",
    "verify_chain_ref",
    "quartering_blocks_ref",
    "solve_disjoint_ref",
    "permute_bits_ref",
    "cofactor_bits_ref",
    "support_bits_ref",
    "npn_apply_ref",
    "stp_assignments_ref",
]

_FREE = None


def merge_cubes_ref(c1: tuple, c2: tuple) -> tuple | None:
    """Original cube merge: per-PI loop, None on conflict."""
    merged = []
    for v1, v2 in zip(c1, c2):
        if v1 is _FREE:
            merged.append(v2)
        elif v2 is _FREE or v1 == v2:
            merged.append(v1)
        else:
            return None
    return tuple(merged)


def merge_cube_sets_ref(
    set1: Iterable[tuple], set2: Iterable[tuple]
) -> set[tuple]:
    """Original MERGE: pairwise tuple combination."""
    result: set[tuple] = set()
    list2 = list(set2)
    for c1 in set1:
        for c2 in list2:
            merged = merge_cubes_ref(c1, c2)
            if merged is not None:
                result.add(merged)
    return result


def _traverse_ref(chain, signal: int, target: int, memo: dict) -> frozenset:
    key = (signal, target)
    cached = memo.get(key)
    if cached is not None:
        return cached
    n = chain.num_inputs
    if chain.is_input(signal):
        cube = tuple(target if i == signal else _FREE for i in range(n))
        result = frozenset((cube,))
        memo[key] = result
        return result
    gate = chain.gate(signal)
    solutions: set[tuple] = set()
    arity = gate.arity
    for row in range(1 << arity):
        if ((gate.op >> row) & 1) != target:
            continue
        partial: set[tuple] = {tuple([_FREE] * n)}
        for i, fanin in enumerate(gate.fanins):
            child_target = (row >> i) & 1
            child_cubes = _traverse_ref(chain, fanin, child_target, memo)
            partial = merge_cube_sets_ref(partial, child_cubes)
            if not partial:
                break
        solutions.update(partial)
    result = frozenset(solutions)
    memo[key] = result
    return result


def chain_all_sat_ref(
    chain, targets: Sequence[int] | None = None
) -> set[tuple]:
    """Original tuple-cube Algorithm 1."""
    outputs = chain.outputs
    if not outputs:
        raise ValueError("chain has no outputs")
    if targets is None:
        targets = [1] * len(outputs)
    if len(targets) != len(outputs):
        raise ValueError("one target per output required")
    memo: dict = {}
    n = chain.num_inputs
    solutions: set[tuple] = {tuple([_FREE] * n)}
    for (signal, complemented), target in zip(outputs, targets):
        node_target = target ^ int(complemented)
        po_cubes = _traverse_ref(chain, signal, node_target, memo)
        solutions = merge_cube_sets_ref(solutions, po_cubes)
        if not solutions:
            break
    return solutions


def cubes_to_onset_ref(cubes: Iterable[tuple], num_inputs: int) -> int:
    """Original onset expansion: nested per-combination Python loop."""
    onset = 0
    for cube in cubes:
        free = [i for i, v in enumerate(cube) if v is _FREE]
        base = 0
        for i, v in enumerate(cube):
            if v == 1:
                base |= 1 << i
        for combo in range(1 << len(free)):
            row = base
            for j, var in enumerate(free):
                if (combo >> j) & 1:
                    row |= 1 << var
            onset |= 1 << row
    return onset


def verify_chain_ref(chain, target) -> bool:
    """Original verification: tuple AllSAT expanded to the onset."""
    if target.num_vars != chain.num_inputs:
        raise ValueError("arity mismatch between chain and target")
    cubes = chain_all_sat_ref(chain)
    return cubes_to_onset_ref(cubes, chain.num_inputs) == target.bits


def quartering_blocks_ref(
    gv_bits: int, gamma_of: Sequence[Sequence[int]], size_b: int
) -> list[int]:
    """Original column-block construction: per-(α, β) bit loop.

    Returns one β-profile bitmask per α, as the old ``_solve_disjoint``
    built before grouping.
    """
    blocks = []
    for row in gamma_of:
        bits = 0
        for beta in range(size_b):
            if (gv_bits >> row[beta]) & 1:
                bits |= 1 << beta
        blocks.append(bits)
    return blocks


def solve_disjoint_ref(
    gv_bits: int,
    gamma_of: Sequence[Sequence[int]],
    ops: Sequence[int],
    fixed_a: int | None = None,
    fixed_b: int | None = None,
    canonical: bool = True,
) -> list[tuple[int, int, int, int]]:
    """One-demand disjoint-cone solver, per-β Python loops throughout.

    The scalar oracle for ``solve_disjoint_batch``: identical
    ``(op_code, a_bits, forced_b, free_b_mask)`` descriptors in
    identical order (candidate A-polarity outer, ``ops`` order inner),
    derived with the pre-kernel row-at-a-time constraint scan instead
    of the stacked gather.
    """
    size_a = len(gamma_of)
    size_b = len(gamma_of[0])
    profiles = quartering_blocks_ref(gv_bits, gamma_of, size_b)

    # Candidate (viable, a_bits, c_profile, d_profile, has1, has0)
    # tuples: c constrains the rows where the A-child is 1, d the rows
    # where it is 0; hasX disables the side with no rows.
    candidates = []
    if fixed_a is None:
        d_val = profiles[0]
        lo, hi = min(profiles), max(profiles)
        two = lo != hi and all(p in (lo, hi) for p in profiles)
        c_val = lo + hi - d_val
        a_bits = 0
        for alpha, p in enumerate(profiles):
            if p != d_val:
                a_bits |= 1 << alpha
        candidates.append((two, a_bits, c_val, d_val, True, True))
        if not canonical:
            full_a = (1 << size_a) - 1
            candidates.append(
                (two, full_a - a_bits, d_val, c_val, True, True)
            )
    else:
        ones = [a for a in range(size_a) if (fixed_a >> a) & 1]
        zeros = [a for a in range(size_a) if not (fixed_a >> a) & 1]
        c_val = profiles[ones[0]] if ones else profiles[0]
        d_val = profiles[zeros[0]] if zeros else profiles[0]
        uniform = all(profiles[a] == c_val for a in ones) and all(
            profiles[a] == d_val for a in zeros
        )
        candidates.append(
            (uniform, fixed_a, c_val, d_val, bool(ones), bool(zeros))
        )

    out: list[tuple[int, int, int, int]] = []
    for viable, a_bits, c_val, d_val, has1, has0 in candidates:
        for code in ops:
            # B value v is allowed at β iff the c profile matches
            # φ(1, v) and the d profile matches φ(0, v) there.
            forced = 0
            freem = 0
            sat = viable
            for beta in range(size_b):
                c_bit = (c_val >> beta) & 1
                d_bit = (d_val >> beta) & 1
                allowed = []
                for v in (0, 1):
                    ok = not has1 or c_bit == (code >> ((v << 1) | 1)) & 1
                    ok = ok and (
                        not has0 or d_bit == (code >> (v << 1)) & 1
                    )
                    allowed.append(ok)
                if not (allowed[0] or allowed[1]):
                    sat = False
                    break
                if allowed[0] and allowed[1]:
                    freem |= 1 << beta
                elif allowed[1]:
                    forced |= 1 << beta
            if not sat:
                continue
            if fixed_b is not None:
                mask = (1 << size_b) - 1
                agree = freem | (mask & ~(fixed_b ^ forced))
                if agree != mask:
                    continue
                out.append((code, a_bits, fixed_b, 0))
            else:
                out.append((code, a_bits, forced, freem))
    return out


def permute_bits_ref(bits: int, num_vars: int, perm: Sequence[int]) -> int:
    """Original per-row permutation loop."""
    out = 0
    for m in range(1 << num_vars):
        if (bits >> m) & 1:
            m2 = 0
            for i in range(num_vars):
                if (m >> i) & 1:
                    m2 |= 1 << perm[i]
            out |= 1 << m2
    return out


def cofactor_bits_ref(bits: int, num_vars: int, var: int, value: int) -> int:
    """Row-by-row cofactor oracle (deliberately naive)."""
    out = 0
    for m in range(1 << num_vars):
        src = (m | (1 << var)) if value else (m & ~(1 << var))
        if (bits >> src) & 1:
            out |= 1 << m
    return out


def support_bits_ref(bits: int, num_vars: int) -> tuple[int, ...]:
    """Support via naive cofactor comparison."""
    return tuple(
        v
        for v in range(num_vars)
        if cofactor_bits_ref(bits, num_vars, v, 0)
        != cofactor_bits_ref(bits, num_vars, v, 1)
    )


def npn_apply_ref(
    bits: int,
    num_vars: int,
    perm: Sequence[int],
    input_flips: int,
    output_flip: bool,
) -> int:
    """Original per-row NPN transform application."""
    out = 0
    for row in range(1 << num_vars):
        src = 0
        for i in range(num_vars):
            x_i = ((row >> perm[i]) & 1) ^ ((input_flips >> i) & 1)
            src |= x_i << i
        v = ((bits >> src) & 1) ^ int(output_flip)
        if v:
            out |= 1 << row
    return out


def stp_assignments_ref(top_row, num_vars: int) -> list[tuple[int, ...]]:
    """Original recursive halving descent over a canonical-form row."""
    out: list[tuple[int, ...]] = []

    def descend(lo: int, hi: int, prefix: tuple[int, ...]) -> None:
        if not any(top_row[lo:hi]):
            return
        if hi - lo == 1:
            out.append(prefix)
            return
        mid = (lo + hi) // 2
        descend(lo, mid, prefix + (1,))
        descend(mid, hi, prefix + (0,))

    descend(0, len(top_row), ())
    return out
