"""Per-kernel invocation and time counters.

Every bit-parallel kernel reports into one process-global
:class:`KernelCounters` registry.  Coarse kernels (an AllSAT traversal,
a batch NPN canonicalization) record wall-clock time; sub-microsecond
kernels (a single cofactor, a cube merge) only count invocations —
timing them would cost more than the kernel itself and distort the
measurement.

The registry is snapshot-based so callers can attribute a *window* of
kernel activity to one synthesis run: ``snap = KERNEL_STATS.snapshot()``
before, ``KERNEL_STATS.since(snap)`` after, and the deltas are folded
into that run's :class:`~repro.core.spec.SynthesisStats`.  Parallel
suite runs execute each instance in its own worker process, so the
global registry never mixes concurrent runs.
"""

from __future__ import annotations

import time

__all__ = ["KernelCounters", "KERNEL_STATS", "SampledTimer"]

_perf = time.perf_counter


class KernelCounters:
    """Process-global calls/seconds tallies, keyed by kernel name."""

    __slots__ = ("calls", "seconds", "sampled")

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}
        self.seconds: dict[str, float] = {}
        #: Kernels whose seconds are extrapolated from a sample rather
        #: than measured on every call (see :class:`SampledTimer`).
        self.sampled: set[str] = set()

    def count(self, name: str, n: int = 1) -> None:
        """Record ``n`` invocations of an untimed kernel."""
        self.calls[name] = self.calls.get(name, 0) + n

    def add(self, name: str, seconds: float, n: int = 1) -> None:
        """Record ``n`` invocations plus their wall-clock cost."""
        self.calls[name] = self.calls.get(name, 0) + n
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def add_sampled(
        self, name: str, seconds: float, stride: int, n: int = 1
    ) -> None:
        """Record ``n`` invocations whose wall clock was measured on a
        one-in-``stride`` sample; the seconds tally is extrapolated."""
        self.calls[name] = self.calls.get(name, 0) + n
        self.seconds[name] = (
            self.seconds.get(name, 0.0) + seconds * stride
        )
        self.sampled.add(name)

    def snapshot(self) -> tuple[dict[str, int], dict[str, float]]:
        """Copies of the current tallies, for :meth:`since`."""
        return dict(self.calls), dict(self.seconds)

    def since(
        self, snapshot: tuple[dict[str, int], dict[str, float]]
    ) -> tuple[dict[str, int], dict[str, float]]:
        """Deltas accumulated after ``snapshot`` was taken."""
        base_calls, base_seconds = snapshot
        calls = {
            k: v - base_calls.get(k, 0)
            for k, v in self.calls.items()
            if v != base_calls.get(k, 0)
        }
        seconds = {
            k: v - base_seconds.get(k, 0.0)
            for k, v in self.seconds.items()
            if v != base_seconds.get(k, 0.0)
        }
        return calls, seconds

    def reset(self) -> None:
        """Drop all tallies (test isolation)."""
        self.calls.clear()
        self.seconds.clear()
        self.sampled.clear()


#: The process-global registry every kernel reports into.
KERNEL_STATS = KernelCounters()


class SampledTimer:
    """One-in-``stride`` wall-clock sampling for hot micro-kernels.

    A kernel that runs in a couple of microseconds pays more for two
    ``perf_counter`` calls than for its own work, so timing every
    invocation distorts exactly the path being measured.  This helper
    counts every call but only reads the clock on every ``stride``-th
    one, extrapolating the seconds tally — the per-call overhead drops
    to one integer increment and a modulo.
    """

    __slots__ = ("name", "stride", "_tick", "_counters")

    def __init__(
        self,
        name: str,
        stride: int = 64,
        counters: KernelCounters | None = None,
    ) -> None:
        self.name = name
        self.stride = stride
        self._tick = 0
        self._counters = counters if counters is not None else KERNEL_STATS

    def start(self) -> float | None:
        """Begin one invocation; returns a tick or None off-sample."""
        self._tick += 1
        return _perf() if self._tick % self.stride == 0 else None

    def stop(self, t0: float | None, n: int = 1) -> None:
        """Finish the invocation begun by :meth:`start`."""
        if t0 is None:
            self._counters.count(self.name, n)
        else:
            self._counters.add_sampled(
                self.name, _perf() - t0, self.stride, n
            )
