"""Per-kernel invocation and time counters.

Every bit-parallel kernel reports into one process-global
:class:`KernelCounters` registry.  Coarse kernels (an AllSAT traversal,
a batch NPN canonicalization) record wall-clock time; sub-microsecond
kernels (a single cofactor, a cube merge) only count invocations —
timing them would cost more than the kernel itself and distort the
measurement.

The registry is snapshot-based so callers can attribute a *window* of
kernel activity to one synthesis run: ``snap = KERNEL_STATS.snapshot()``
before, ``KERNEL_STATS.since(snap)`` after, and the deltas are folded
into that run's :class:`~repro.core.spec.SynthesisStats`.  Parallel
suite runs execute each instance in its own worker process, so the
global registry never mixes concurrent runs.
"""

from __future__ import annotations

import time

__all__ = ["KernelCounters", "KERNEL_STATS"]

_perf = time.perf_counter


class KernelCounters:
    """Process-global calls/seconds tallies, keyed by kernel name."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}
        self.seconds: dict[str, float] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Record ``n`` invocations of an untimed kernel."""
        self.calls[name] = self.calls.get(name, 0) + n

    def add(self, name: str, seconds: float, n: int = 1) -> None:
        """Record ``n`` invocations plus their wall-clock cost."""
        self.calls[name] = self.calls.get(name, 0) + n
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def snapshot(self) -> tuple[dict[str, int], dict[str, float]]:
        """Copies of the current tallies, for :meth:`since`."""
        return dict(self.calls), dict(self.seconds)

    def since(
        self, snapshot: tuple[dict[str, int], dict[str, float]]
    ) -> tuple[dict[str, int], dict[str, float]]:
        """Deltas accumulated after ``snapshot`` was taken."""
        base_calls, base_seconds = snapshot
        calls = {
            k: v - base_calls.get(k, 0)
            for k, v in self.calls.items()
            if v != base_calls.get(k, 0)
        }
        seconds = {
            k: v - base_seconds.get(k, 0.0)
            for k, v in self.seconds.items()
            if v != base_seconds.get(k, 0.0)
        }
        return calls, seconds

    def reset(self) -> None:
        """Drop all tallies (test isolation)."""
        self.calls.clear()
        self.seconds.clear()


#: The process-global registry every kernel reports into.
KERNEL_STATS = KernelCounters()
