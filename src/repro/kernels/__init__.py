"""Bit-parallel kernel layer.

The synthesis core dispatches its hot paths through this package:

* :mod:`~repro.kernels.cubes` / :mod:`~repro.kernels.allsat` — packed
  two-plane cubes, the word-level MERGE, circuit AllSAT, and the
  word-parallel onset expansion;
* :mod:`~repro.kernels.factorization` — quartering-part column
  grouping, shape index maps, cone localize/expand gathers, and the
  2-input operator flip tables;
* :mod:`~repro.kernels.tables` — truth-table cofactor/support/permute
  kernels and batch exact NPN canonicalization;
* :mod:`~repro.kernels.stats` — the per-kernel invocation/time
  registry (:data:`KERNEL_STATS`) that
  :func:`repro.core.pipeline.run_pipeline` folds into
  :class:`~repro.core.spec.SynthesisStats`;
* :mod:`~repro.kernels.reference` — the original pure-Python
  implementations, kept for equivalence tests and the old-vs-new
  benchmark only.

Layering: kernels import nothing from the rest of :mod:`repro`, so any
layer (truth tables, STP algebra, core, store) may call down into them
without cycles.
"""

from .allsat import (
    chain_onset,
    chain_output_onsets,
    packed_all_sat,
    stp_assignments,
)
from .bitops import (
    array_to_bits,
    bits_to_array,
    collapse_indices,
    spread_indices,
    var_mask,
)
from .cubes import (
    merge_packed_sets,
    pack_cube,
    pack_cubes,
    packed_onset,
    unpack_cube,
    unpack_cubes,
)
from .factorization import (
    FLIP_INPUT0,
    FLIP_INPUT1,
    expand_array,
    expand_positions,
    index_maps,
    localize_array,
    quartering_blocks,
    quartering_blocks_batch,
    quartering_profiles,
    solve_disjoint_batch,
)
from .stats import KERNEL_STATS, KernelCounters, SampledTimer
from .tables import (
    cofactor_bits,
    depends_bits,
    npn_apply_bits,
    npn_minimum,
    npn_orbit,
    permute_bits,
    support_bits,
)

__all__ = [
    "KERNEL_STATS",
    "KernelCounters",
    "SampledTimer",
    "array_to_bits",
    "bits_to_array",
    "chain_onset",
    "chain_output_onsets",
    "cofactor_bits",
    "collapse_indices",
    "depends_bits",
    "expand_array",
    "expand_positions",
    "FLIP_INPUT0",
    "FLIP_INPUT1",
    "index_maps",
    "localize_array",
    "merge_packed_sets",
    "npn_apply_bits",
    "npn_minimum",
    "npn_orbit",
    "pack_cube",
    "pack_cubes",
    "packed_all_sat",
    "packed_onset",
    "permute_bits",
    "quartering_blocks",
    "quartering_blocks_batch",
    "quartering_profiles",
    "solve_disjoint_batch",
    "spread_indices",
    "stp_assignments",
    "support_bits",
    "unpack_cube",
    "unpack_cubes",
    "var_mask",
]
