"""Bit-parallel circuit AllSAT (Algorithms 1–2 on packed cubes).

Same traversal as :mod:`repro.core.circuit_sat` — rows of a node's
structural matrix that evaluate to the target dictate child targets,
child cube sets combine through MERGE — but every cube is one packed
integer (:mod:`repro.kernels.cubes`), so the hot MERGE inner loop is a
couple of word operations per pair instead of a per-PI Python loop.

One deliberate semantic tightening over the original tuple solver: an
output wired to :attr:`BooleanChain.CONST0` computes constant 0, so
its AllSAT set is *empty* for target 1 and all-free for target 0 (the
tuple solver treated the pseudo-signal as an unconstrained input).  No
synthesis path emits such chains into verification, but the kernel is
correct if one ever does.

Also hosts the STP canonical-form AllSAT kernel: the satisfying
columns of a 2×2^n canonical form read off with ``np.flatnonzero``,
replacing the recursive halving descent (ascending column index *is*
the descent's depth-first order).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .cubes import merge_packed_sets, packed_onset
from .stats import KERNEL_STATS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..chain.chain import BooleanChain

__all__ = [
    "packed_all_sat",
    "chain_onset",
    "chain_output_onsets",
    "stp_assignments",
]

_CONST0 = -1  # BooleanChain.CONST0 without importing the chain layer


def _traverse(
    chain: "BooleanChain",
    signal: int,
    target: int,
    memo: dict[int, list[int]],
    n: int,
) -> list[int]:
    """Algorithm 2: packed cubes driving ``signal`` to ``target``."""
    key = (signal << 1) | target
    cached = memo.get(key)
    if cached is not None:
        return cached
    if signal < n:
        # One PI cube: bit in the ones or zeros plane.
        result = [(target << signal) | ((1 - target) << (signal + n))]
        memo[key] = result
        return result
    gate = chain.gate(signal)
    op = gate.op
    fanins = gate.fanins
    solutions: set[int] = set()
    for row in range(1 << len(fanins)):
        if ((op >> row) & 1) != target:
            continue
        partial: list[int] | None = None
        for i, fanin in enumerate(fanins):
            child = _traverse(chain, fanin, (row >> i) & 1, memo, n)
            partial = (
                child
                if partial is None
                else merge_packed_sets(partial, child, n)
            )
            if not partial:
                break
        if partial:
            solutions.update(partial)
    result = list(solutions)
    memo[key] = result
    return result


def packed_all_sat(
    chain: "BooleanChain", targets: Sequence[int] | None = None
) -> list[int]:
    """Algorithm 1 on packed cubes: cubes driving every output to its
    target (defaults to all-1).  Returns a deduplicated packed list."""
    outputs = chain.outputs
    if not outputs:
        raise ValueError("chain has no outputs")
    if targets is None:
        targets = [1] * len(outputs)
    if len(targets) != len(outputs):
        raise ValueError("one target per output required")
    t0 = time.perf_counter()
    n = chain.num_inputs
    memo: dict[int, list[int]] = {}
    solutions: list[int] | None = None
    for (signal, complemented), target in zip(outputs, targets):
        node_target = target ^ int(complemented)
        if signal == _CONST0:
            # The constant-zero pseudo input: never 1, always 0.
            po_cubes = [0] if node_target == 0 else []
        else:
            po_cubes = _traverse(chain, signal, node_target, memo, n)
        solutions = (
            po_cubes
            if solutions is None
            else merge_packed_sets(solutions, po_cubes, n)
        )
        if not solutions:
            break
    KERNEL_STATS.add("chain_allsat", time.perf_counter() - t0)
    return solutions if solutions is not None else []


def chain_onset(
    chain: "BooleanChain", targets: Sequence[int] | None = None
) -> int:
    """Bitmask of minterms whose assignment satisfies every output
    target — AllSAT plus the word-parallel onset expansion, fused."""
    return packed_onset(packed_all_sat(chain, targets), chain.num_inputs)


def chain_output_onsets(chain: "BooleanChain") -> list[int]:
    """Per-output onset bitmasks of a (multi-output) chain.

    Runs one AllSAT traversal per declared output with a *shared*
    memo, so interior gates feeding several outputs are solved once —
    the multi-output analogue of :func:`chain_onset`, answering "which
    minterms drive output ``j`` to 1" independently per output rather
    than jointly.
    """
    outputs = chain.outputs
    if not outputs:
        raise ValueError("chain has no outputs")
    t0 = time.perf_counter()
    n = chain.num_inputs
    memo: dict[int, list[int]] = {}
    onsets: list[int] = []
    for signal, complemented in outputs:
        node_target = 1 ^ int(complemented)
        if signal == _CONST0:
            cubes = [0] if node_target == 0 else []
        else:
            cubes = _traverse(chain, signal, node_target, memo, n)
        onsets.append(packed_onset(cubes, n))
    KERNEL_STATS.add("chain_allsat", time.perf_counter() - t0)
    return onsets


def stp_assignments(top_row: np.ndarray, num_vars: int) -> list[tuple[int, ...]]:
    """Satisfying assignments of an STP canonical form, descent order.

    Column ``c`` of the canonical form encodes the assignment
    ``x_i = 1 - bit_{n-1-i}(c)`` (``x_1`` is the most significant
    variable and TRUE selects the *left* half), so ascending column
    index reproduces the Fig.-1 depth-first order exactly.
    """
    t0 = time.perf_counter()
    cols = np.flatnonzero(top_row)
    if num_vars == 0:
        result = [() for _ in range(cols.size)]
    else:
        shifts = np.arange(num_vars - 1, -1, -1, dtype=np.int64)
        values = 1 - ((cols[:, None] >> shifts[None, :]) & 1)
        result = [tuple(row) for row in values.tolist()]
    KERNEL_STATS.add("stp_allsat", time.perf_counter() - t0)
    return result
