"""Live progress reporting for batch-synthesis runs.

Dispatcher threads complete instances out of order; the reporter is
the one place that serializes their announcements, so progress lines
never interleave mid-line and the ETA maths sees a consistent count.
"""

from __future__ import annotations

import sys
import threading
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Thread-safe ``[done/total]`` progress lines on stderr.

    The scheduler calls :meth:`tick` from its dispatcher threads as
    instances complete; the reporter prints one line per completion
    with a naive mean-rate ETA.  ``stream=None`` silences output while
    keeping the counters, which is what the tests use.
    """

    def __init__(self, total: int, stream=sys.stderr) -> None:
        self.total = total
        self.done = 0
        self._start = time.perf_counter()
        self._stream = stream
        self._lock = threading.Lock()

    def tick(self, label: str, status: str, worker: int) -> None:
        """Record (and optionally print) one completed instance."""
        with self._lock:
            self.done += 1
            done = self.done
            elapsed = time.perf_counter() - self._start
        if self._stream is None:
            return
        remaining = max(0, self.total - done)
        eta = (elapsed / done) * remaining if done else 0.0
        print(
            f"[{done}/{self.total}] {label}: {status} "
            f"(worker {worker}, eta {eta:.0f}s)",
            file=self._stream,
        )

    @property
    def elapsed(self) -> float:
        """Seconds since the reporter was created."""
        return time.perf_counter() - self._start
