"""Command-line batch synthesis.

Installed as ``repro-batch`` (also ``python -m repro.parallel.cli``)::

    repro-batch --suite npn4 --count 30 --jobs 4
    repro-batch --suite npn4 --jobs 4 --store chains.db --checkpoint ck.jsonl
    repro-batch --functions funcs.hex --vars 4 --jobs 8 --engine stp

Runs a batch of synthesis instances through the parallel scheduler:
every instance executes in its own isolated, rlimit-capped worker
process with a hard wall-clock kill, at most ``--jobs`` alive at once.
Instances come from a named benchmark suite or from a file of hex
truth tables (one per line, ``#`` comments allowed).  With ``--store``
the persistent chain store is consulted before synthesizing and
written back on miss; with ``--checkpoint`` completed instances
survive interrupts and are replayed on restart.

Per-instance results stream to stdout as JSON lines; the final
summary (aggregate counters, per-worker accounting, wall clock) goes
to stderr, or to ``--json`` as a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from ..bench.runner import Algorithm, run_suite
from ..bench.suites import SUITE_NAMES, get_suite
from ..engine import run_engine
from ..runtime.engines import ENGINE_NAMES
from ..truthtable import from_hex
from ..truthtable.table import TruthTable

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-batch`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="Parallel batch exact synthesis with a persistent "
        "chain store.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--suite",
        choices=SUITE_NAMES,
        help="benchmark suite to draw instances from",
    )
    source.add_argument(
        "--functions",
        type=str,
        help="file of hex truth tables, one per line (requires --vars)",
    )
    parser.add_argument(
        "--vars",
        type=int,
        default=None,
        help="number of inputs for --functions entries",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="cap on the number of instances (default: all)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="stp",
        help="primary synthesis engine (default: stp)",
    )
    parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the CNF fence-engine fallback on crashes",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="concurrent instances"
    )
    parser.add_argument(
        "--race",
        action="store_true",
        help="race the engine lanes concurrently per instance (first "
        "verified exact answer wins); exhausted instances degrade to "
        "stored upper bounds instead of bare timeouts",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-instance budget in seconds",
    )
    parser.add_argument(
        "--max-solutions", type=int, default=64, help="solution cap"
    )
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        help="persistent chain-store path (SQLite)",
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="JSONL checkpoint path (resume support)",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="suite generator seed"
    )
    parser.add_argument(
        "--memory-limit-mb",
        type=int,
        default=None,
        help="per-worker RLIMIT_AS cap",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="write the machine-readable summary to this path",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="live progress on stderr"
    )
    return parser


def _load_functions(args) -> tuple[str, list[TruthTable]]:
    if args.suite:
        return args.suite, get_suite(args.suite, args.count, seed=args.seed)
    if args.vars is None:
        raise SystemExit("--functions requires --vars")
    functions = []
    with open(args.functions, "r", encoding="utf-8") as handle:
        for line in handle:
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            functions.append(from_hex(text, args.vars))
    if args.count is not None:
        functions = functions[: args.count]
    return "batch", functions


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        batch_name, functions = _load_functions(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 65
    if not functions:
        print("error: no instances to run", file=sys.stderr)
        return 65

    from functools import partial

    engines: tuple[str, ...] = (args.engine,)
    if args.race:
        from ..runtime.racing import DEFAULT_RACE_ENGINES

        engines = tuple(dict.fromkeys(engines + DEFAULT_RACE_ENGINES))
    elif not args.no_fallback and args.engine != "fen":
        engines = (args.engine, "fen")
    kwargs = {"max_solutions": args.max_solutions}
    algorithm = Algorithm(
        args.engine.upper(),
        partial(run_engine, args.engine, **kwargs),
        engines=engines,
        engine_kwargs={name: dict(kwargs) for name in engines},
    )

    started = time.perf_counter()
    try:
        reports = run_suite(
            batch_name,
            functions,
            [algorithm],
            args.timeout,
            verbose=args.verbose,
            checkpoint_path=args.checkpoint,
            isolate=args.jobs == 1,
            memory_limit_mb=args.memory_limit_mb,
            jobs=args.jobs,
            store_path=args.store,
            race=args.race,
        )
    except KeyboardInterrupt:
        print(
            "interrupted — completed instances are checkpointed"
            + (f" in {args.checkpoint}" if args.checkpoint else ""),
            file=sys.stderr,
        )
        return 130
    wall = time.perf_counter() - started

    report = reports[0]
    for outcome in report.outcomes:
        print(json.dumps(outcome.to_record(outcome.function_hex)))
    summary = {
        "batch": batch_name,
        "engine": args.engine,
        "jobs": args.jobs,
        "instances": len(report.outcomes),
        "solved": report.num_ok,
        "timeouts": report.num_timeouts,
        "degraded": report.num_degraded,
        "store_hits": report.num_store_hits,
        "wall_seconds": round(wall, 6),
        "workers": {
            str(worker): stats
            for worker, stats in sorted(report.worker_summary().items())
        },
    }
    print(
        f"{summary['solved']}/{summary['instances']} solved, "
        f"{summary['timeouts']} timeouts, "
        f"{summary['degraded']} degraded, "
        f"{summary['store_hits']} store hits, "
        f"{wall:.2f}s wall with jobs={args.jobs}",
        file=sys.stderr,
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
