"""Priority- and deadline-aware dispatch queue for the resident pool.

The serving layer admits requests carrying a **priority band** (high /
normal / low) and an optional absolute **deadline**.  A plain FIFO
``queue.Queue`` makes both meaningless: under overload a burst of
low-priority work queued first starves an urgent request behind it,
and a request whose deadline lapsed while queued still burns a worker
slot producing an answer nobody is waiting for.

:class:`DispatchQueue` replaces the FIFO for the resident pool with a
heap ordered by ``(band, deadline, seq)``:

* **strict priority bands** — a ready lower band (smaller number =
  more urgent) always dispatches before any higher band;
* **earliest-deadline-first within a band** — deadline-less entries
  sort after every deadline'd entry of their band;
* **FIFO within equal (band, deadline) keys** — the monotone ``seq``
  breaks ties, so equal-key entries dispatch in arrival order.

Expiry is checked at *pop* time against the queue's injectable clock:
:meth:`get` hands expired entries back flagged, so the dispatcher can
answer them (HTTP 504) in O(1) without ever running the payload — an
expired request never occupies a worker.  The heap key keeps the
*original* deadline even if the payload's deadline is later extended
(ordering is advisory; expiry consults the flag returned here, and the
caller re-checks its own payload state).

Thread-safe (one lock + two conditions, mirroring ``queue.Queue``);
``Full``/``Empty`` are the stdlib :mod:`queue` exceptions so existing
submit loops keep their exception handling.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from queue import Empty, Full
from typing import Callable

__all__ = [
    "DeadlineExpired",
    "DispatchQueue",
    "PRIORITY_BANDS",
    "SENTINEL_BAND",
    "normalize_priority",
]

#: Named priority bands accepted by the serving layer.  Smaller
#: dispatches first.
PRIORITY_BANDS = {"high": 0, "normal": 1, "low": 2}

#: Band used for pool-control entries (shutdown sentinels): sorts
#: after every real job so dispatchers exit only once the queue is
#: worked off.
SENTINEL_BAND = 1 << 30

_NO_DEADLINE = float("inf")


class DeadlineExpired(Exception):
    """A queued job's deadline lapsed before a worker picked it up."""


def normalize_priority(value) -> int:
    """Map a request ``priority`` field onto a band number.

    Accepts the named bands (``"high"``/``"normal"``/``"low"``,
    case-insensitive), an integer band (clamped to ``0..9``), or
    ``None`` (→ the normal band).  Raises :class:`ValueError` on
    anything else — the serving layer surfaces this as a 400.
    """
    if value is None:
        return PRIORITY_BANDS["normal"]
    if isinstance(value, str):
        try:
            return PRIORITY_BANDS[value.strip().lower()]
        except KeyError:
            raise ValueError(
                f'"priority" must be one of {sorted(PRIORITY_BANDS)} '
                "or an integer band"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError('"priority" must be a band name or integer')
    if not 0 <= value <= 9:
        raise ValueError('"priority" integer bands range 0..9')
    return value


class DispatchQueue:
    """Thread-safe (band, deadline, FIFO)-ordered work queue.

    Parameters
    ----------
    maxsize:
        Bound on queued entries (``0`` = unbounded), matching
        ``queue.Queue`` semantics: :meth:`put` blocks/raises
        :class:`queue.Full` when the bound is hit.
    clock:
        Monotonic clock used for expiry checks; injectable so property
        tests drive time deterministically.
    """

    def __init__(
        self,
        maxsize: int = 0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._maxsize = maxsize
        self._clock = clock
        self._heap: list[tuple[int, float, int, object]] = []
        self._seq = itertools.count()
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._not_full = threading.Condition(self._mutex)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def put(
        self,
        payload,
        *,
        band: int = PRIORITY_BANDS["normal"],
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> None:
        """Enqueue ``payload`` under ``(band, deadline)``.

        ``deadline`` is an absolute clock value (same clock as the
        queue's); ``None`` sorts after every deadline'd entry of the
        band.  Blocks while full; raises :class:`queue.Full` once
        ``timeout`` elapses (``timeout=0`` never blocks).
        """
        key = _NO_DEADLINE if deadline is None else float(deadline)
        with self._not_full:
            if self._maxsize > 0:
                endtime = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while len(self._heap) >= self._maxsize:
                    remaining = (
                        None
                        if endtime is None
                        else endtime - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise Full
                    self._not_full.wait(timeout=remaining)
            heapq.heappush(
                self._heap, (band, key, next(self._seq), payload)
            )
            self._not_empty.notify()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None):
        """Pop the most urgent entry as ``(payload, expired)``.

        ``expired`` is True when the entry's deadline lapsed before
        this pop — the caller must answer it without running it.
        Blocks while empty; raises :class:`queue.Empty` on timeout.
        """
        with self._not_empty:
            endtime = (
                None if timeout is None else time.monotonic() + timeout
            )
            while not self._heap:
                remaining = (
                    None if endtime is None else endtime - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise Empty
                self._not_empty.wait(timeout=remaining)
            band, key, _seq, payload = heapq.heappop(self._heap)
            self._not_full.notify()
            expired = key != _NO_DEADLINE and self._clock() >= key
            return payload, expired

    def get_nowait(self):
        """Pop any entry without blocking (shutdown drains use this).

        Returns the bare payload — expiry no longer matters once the
        pool is cancelling everything.  Raises :class:`queue.Empty`.
        """
        with self._not_empty:
            if not self._heap:
                raise Empty
            _band, _key, _seq, payload = heapq.heappop(self._heap)
            self._not_full.notify()
            return payload

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def qsize(self) -> int:
        with self._mutex:
            return len(self._heap)

    def empty(self) -> bool:
        return self.qsize() == 0
