"""Parallel batch-synthesis scheduler.

Table-I style workloads are embarrassingly parallel across instances,
and every instance already runs (optionally) inside an isolated,
rlimit-capped worker process with a hard wall-clock kill
(:mod:`repro.runtime.worker`).  The scheduler exploits exactly that:
``jobs`` lightweight dispatcher threads pull tasks from a bounded work
queue and drive one :class:`~repro.runtime.executor.FaultTolerantExecutor`
call each — so at any moment at most ``jobs`` forked synthesis workers
are alive, each with its own deadline, retry/fallback chain, and
memory cap, while the parent threads merely block on worker pipes.
This reuses the whole fault-tolerance stack instead of a bare
``ProcessPoolExecutor`` (which has no per-task hard kill and dies with
its workers).

Scheduling order is *longest-expected-first*: sorting the queue by a
cost heuristic shrinks the makespan tail (a hard instance dispatched
last would leave ``jobs - 1`` threads idle while it runs).  Results
are re-ordered to the caller's task order before being returned, so
aggregate reports are byte-identical regardless of ``jobs``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..runtime.executor import ExecutionOutcome
from ..truthtable.table import TruthTable
from .progress import ProgressReporter

__all__ = [
    "BatchTask",
    "WorkerStats",
    "BatchScheduler",
    "expected_cost",
]

_SENTINEL = None


@dataclass(frozen=True)
class BatchTask:
    """One (algorithm, function) unit of work in a batch."""

    index: int
    algorithm: str
    function: TruthTable
    timeout: float
    #: Checkpoint identity; empty when the batch is not checkpointed.
    key: str = ""

    @property
    def label(self) -> str:
        return f"{self.algorithm} 0x{self.function.to_hex()}"


@dataclass
class WorkerStats:
    """Per-dispatcher fault/timeout accounting."""

    worker: int
    tasks: int = 0
    solved: int = 0
    timeouts: int = 0
    crashes: int = 0
    #: Instances served as a non-exact upper bound after every exact
    #: engine exhausted its budget (racing's graceful degradation).
    degraded: int = 0
    busy_seconds: float = 0.0

    def record(self, outcome: ExecutionOutcome, seconds: float) -> None:
        self.tasks += 1
        self.busy_seconds += seconds
        if outcome.solved:
            self.solved += 1
        elif outcome.status == "degraded":
            self.degraded += 1
        elif outcome.status == "timeout":
            self.timeouts += 1
        else:
            self.crashes += 1

    def to_record(self) -> dict:
        """JSON-safe summary for batch reports."""
        return {
            "worker": self.worker,
            "tasks": self.tasks,
            "solved": self.solved,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "degraded": self.degraded,
            "busy_seconds": round(self.busy_seconds, 6),
        }


def expected_cost(function: TruthTable) -> tuple[int, int]:
    """Heuristic ordering key: larger means expected-slower.

    Support size dominates (topology families and CNF sizes grow with
    it); within a support size, functions with balanced on/off sets
    tend to need more gates than near-constant ones.  The heuristic
    only shapes the schedule — correctness never depends on it.
    """
    ones = function.count_ones()
    balance = min(ones, function.num_rows - ones)
    return (function.support_size(), balance)


class BatchScheduler:
    """Shard batch tasks across ``jobs`` concurrent executors.

    Parameters
    ----------
    executors:
        One executor per algorithm name — anything with the
        ``run(function, timeout) -> ExecutionOutcome`` contract, i.e.
        :class:`~repro.runtime.executor.FaultTolerantExecutor` or the
        racing :class:`~repro.runtime.racing.RacingExecutor`.
        Executors are shared across dispatcher threads;
        `FaultTolerantExecutor` keeps all per-run state on the stack,
        so this is safe (a racing executor's ``last_cancellations``
        scratch attribute is the only cross-thread race, and it is
        advisory accounting only).
    jobs:
        Number of dispatcher threads = maximum concurrently-alive
        synthesis workers.
    queue_depth:
        Bound on the work queue (default ``2 × jobs``): the feeder
        blocks instead of materialising the whole suite in the queue.
    progress:
        Optional :class:`ProgressReporter` ticked on every completion.
    on_complete:
        Optional callback ``(task, outcome, worker_id)`` invoked
        (serialized under one lock) as each instance finishes — the
        bench runner hooks checkpoint appends here.
    """

    def __init__(
        self,
        executors: Mapping[str, object],
        jobs: int,
        *,
        queue_depth: int | None = None,
        progress: ProgressReporter | None = None,
        on_complete: Callable[[BatchTask, ExecutionOutcome, int], None]
        | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._executors = dict(executors)
        self._jobs = jobs
        self._queue_depth = queue_depth or max(2, 2 * jobs)
        self._progress = progress
        self._on_complete = on_complete
        self._complete_lock = threading.Lock()
        self.worker_stats: list[WorkerStats] = []

    def run(
        self, tasks: Sequence[BatchTask]
    ) -> list[ExecutionOutcome | None]:
        """Execute every task; returns outcomes in *task-list order*.

        Dispatch order is longest-expected-first, but the returned
        list lines up index-for-index with ``tasks``, so callers see a
        deterministic order regardless of ``jobs``.  A
        ``KeyboardInterrupt`` stops feeding, lets in-flight instances
        finish (their hard timeouts still apply), and re-raises;
        completed outcomes up to that point are in the returned
        positions only via ``on_complete`` side effects.
        """
        indexes = {task.index for task in tasks}
        if len(indexes) != len(tasks):
            raise ValueError("task indexes must be unique")
        for task in tasks:
            if task.algorithm not in self._executors:
                raise ValueError(
                    f"no executor for algorithm {task.algorithm!r}"
                )
        if not tasks:
            return []
        results: dict[int, ExecutionOutcome] = {}
        order = sorted(
            tasks,
            key=lambda t: (expected_cost(t.function), -t.index),
            reverse=True,
        )
        work: queue.Queue = queue.Queue(maxsize=self._queue_depth)
        stop = threading.Event()
        errors: list[BaseException] = []
        self.worker_stats = [WorkerStats(i) for i in range(self._jobs)]
        threads = [
            threading.Thread(
                target=self._worker,
                args=(i, work, stop, results, errors),
                name=f"batch-worker-{i}",
                daemon=True,
            )
            for i in range(self._jobs)
        ]
        for thread in threads:
            thread.start()
        interrupted: BaseException | None = None
        try:
            self._feed(order, work, stop)
        except KeyboardInterrupt as exc:
            stop.set()
            interrupted = exc
        if stop.is_set():
            self._drain(work)
        self._send_sentinels(work, len(threads), stop)
        for thread in threads:
            thread.join()
        if interrupted is not None:
            raise interrupted
        if errors:
            raise errors[0]
        return [results.get(task.index) for task in tasks]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _feed(
        order: Sequence[BatchTask],
        work: queue.Queue,
        stop: threading.Event,
    ) -> None:
        """Enqueue tasks, backing off while the bounded queue is full.

        The timeout loop (instead of a blocking ``put``) keeps the
        feeder responsive to ``stop`` — a dead worker pool must not
        leave the feeder wedged on a full queue.
        """
        for task in order:
            while not stop.is_set():
                try:
                    work.put(task, timeout=0.1)
                    break
                except queue.Full:
                    continue
            if stop.is_set():
                return

    @staticmethod
    def _send_sentinels(
        work: queue.Queue, count: int, stop: threading.Event
    ) -> None:
        """Post one shutdown sentinel per worker.

        Discarding queued entries to make room is only legal once
        ``stop`` is set (the workers are draining or dead); in normal
        operation the put simply waits for a consumer.
        """
        for _ in range(count):
            while True:
                try:
                    work.put(_SENTINEL, timeout=0.1)
                    break
                except queue.Full:  # pragma: no cover - timing dependent
                    if stop.is_set():
                        BatchScheduler._drain(work)

    def _worker(
        self,
        worker_id: int,
        work: queue.Queue,
        stop: threading.Event,
        results: dict,
        errors: list,
    ) -> None:
        stats = self.worker_stats[worker_id]
        while True:
            task = work.get()
            if task is _SENTINEL:
                return
            if stop.is_set():
                continue  # drain without executing
            executor = self._executors[task.algorithm]
            started = time.perf_counter()
            try:
                outcome = executor.run(task.function, task.timeout)
            except BaseException as exc:
                errors.append(exc)
                stop.set()
                return
            stats.record(outcome, time.perf_counter() - started)
            results[task.index] = outcome
            with self._complete_lock:
                if self._on_complete is not None:
                    try:
                        self._on_complete(task, outcome, worker_id)
                    except BaseException as exc:
                        errors.append(exc)
                        stop.set()
                        return
                if self._progress is not None:
                    self._progress.tick(
                        task.label,
                        outcome.status
                        + (
                            f" {outcome.runtime:.3f}s"
                            if outcome.solved
                            else ""
                        ),
                        worker_id,
                    )

    @staticmethod
    def _drain(work: queue.Queue) -> None:
        try:
            while True:
                work.get_nowait()
        except queue.Empty:
            pass
