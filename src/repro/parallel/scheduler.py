"""Parallel batch-synthesis scheduler.

Table-I style workloads are embarrassingly parallel across instances,
and every instance already runs (optionally) inside an isolated,
rlimit-capped worker process with a hard wall-clock kill
(:mod:`repro.runtime.worker`).  The scheduler exploits exactly that:
``jobs`` lightweight dispatcher threads pull tasks from a work queue
and drive one :class:`~repro.runtime.executor.FaultTolerantExecutor`
call each — so at any moment at most ``jobs`` forked synthesis workers
are alive, each with its own deadline, retry/fallback chain, and
memory cap, while the parent threads merely block on worker pipes.
This reuses the whole fault-tolerance stack instead of a bare
``ProcessPoolExecutor`` (which has no per-task hard kill and dies with
its workers).

The scheduler has two lifecycles sharing one dispatch core:

* **One-shot** (:meth:`BatchScheduler.run`): the suite API.  Dispatch
  order is *longest-expected-first* (sorting by a cost heuristic
  shrinks the makespan tail), results are re-ordered to the caller's
  task order, and the pool is torn down when the batch completes.
* **Resident** (:meth:`start` / :meth:`submit` / :meth:`drain` /
  :meth:`shutdown`): the serving API.  Dispatcher threads stay alive
  across requests — no per-call pool spin-up — and each
  :meth:`submit` returns a :class:`concurrent.futures.Future` that an
  async front-end can await.  Dispatchers are **recycled** after
  ``recycle_after`` tasks (the thread exits and a fresh one takes over
  its slot) so reference leaks in engine code can never accumulate
  over a long-lived process.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..runtime.executor import ExecutionOutcome
from ..truthtable.table import TruthTable
from .dispatch import (
    PRIORITY_BANDS,
    SENTINEL_BAND,
    DeadlineExpired,
    DispatchQueue,
)
from .progress import ProgressReporter

__all__ = [
    "BatchTask",
    "WorkerStats",
    "BatchScheduler",
    "expected_cost",
]

_SENTINEL = None


@dataclass(frozen=True)
class BatchTask:
    """One (algorithm, function) unit of work in a batch."""

    index: int
    algorithm: str
    function: TruthTable
    timeout: float
    #: Checkpoint identity; empty when the batch is not checkpointed.
    key: str = ""

    @property
    def label(self) -> str:
        return f"{self.algorithm} 0x{self.function.to_hex()}"


@dataclass
class WorkerStats:
    """Per-dispatcher-slot fault/timeout accounting.

    A slot survives thread recycling: the replacement dispatcher keeps
    accumulating into the same record, so per-slot totals describe the
    slot's whole service life, not one thread incarnation.
    """

    worker: int
    tasks: int = 0
    solved: int = 0
    timeouts: int = 0
    crashes: int = 0
    #: Instances served as a non-exact upper bound after every exact
    #: engine exhausted its budget (racing's graceful degradation).
    degraded: int = 0
    #: Queued jobs answered as deadline-expired without executing.
    expired: int = 0
    #: Times this slot's dispatcher thread was recycled.
    recycled: int = 0
    busy_seconds: float = 0.0

    def record(self, outcome: ExecutionOutcome, seconds: float) -> None:
        self.tasks += 1
        self.busy_seconds += seconds
        if outcome.solved:
            self.solved += 1
        elif outcome.status == "degraded":
            self.degraded += 1
        elif outcome.status == "timeout":
            self.timeouts += 1
        else:
            self.crashes += 1

    def record_crash(self, seconds: float) -> None:
        """An attempt that raised instead of returning an outcome."""
        self.tasks += 1
        self.busy_seconds += seconds
        self.crashes += 1

    def to_record(self) -> dict:
        """JSON-safe summary for batch reports."""
        return {
            "worker": self.worker,
            "tasks": self.tasks,
            "solved": self.solved,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "degraded": self.degraded,
            "expired": self.expired,
            "recycled": self.recycled,
            "busy_seconds": round(self.busy_seconds, 6),
        }


def expected_cost(function: TruthTable) -> tuple[int, int]:
    """Heuristic ordering key: larger means expected-slower.

    Support size dominates (topology families and CNF sizes grow with
    it); within a support size, functions with balanced on/off sets
    tend to need more gates than near-constant ones.  The heuristic
    only shapes the schedule — correctness never depends on it.
    """
    ones = function.count_ones()
    balance = min(ones, function.num_rows - ones)
    return (function.support_size(), balance)


class _Job:
    """One queued unit of dispatcher work."""

    __slots__ = ("label", "fn", "future", "task", "band", "deadline")

    def __init__(
        self,
        label: str,
        fn: Callable[[], ExecutionOutcome],
        task: BatchTask | None = None,
        band: int = PRIORITY_BANDS["normal"],
        deadline: float | None = None,
    ) -> None:
        self.label = label
        self.fn = fn
        self.future: Future = Future()
        self.task = task
        self.band = band
        self.deadline = deadline


class BatchScheduler:
    """Shard synthesis tasks across ``jobs`` concurrent executors.

    Parameters
    ----------
    executors:
        One executor per algorithm name — anything with the
        ``run(function, timeout) -> ExecutionOutcome`` contract, i.e.
        :class:`~repro.runtime.executor.FaultTolerantExecutor` or the
        racing :class:`~repro.runtime.racing.RacingExecutor`.
        Executors are shared across dispatcher threads;
        `FaultTolerantExecutor` keeps all per-run state on the stack,
        so this is safe (a racing executor's ``last_cancellations``
        scratch attribute is the only cross-thread race, and it is
        advisory accounting only).
    jobs:
        Number of dispatcher threads = maximum concurrently-alive
        synthesis workers.
    queue_depth:
        Bound on the work queue (default ``2 × jobs``): submitters
        block instead of materialising the whole suite in the queue.
        ``0`` makes the queue unbounded — the serving layer does its
        own load shedding on :meth:`backlog` instead of blocking its
        event loop.
    progress:
        Optional :class:`ProgressReporter` ticked on every completion.
    on_complete:
        Optional callback ``(task, outcome, worker_id)`` invoked
        (serialized under one lock) as each instance finishes — the
        bench runner hooks checkpoint appends here.  Only jobs carrying
        a :class:`BatchTask` reach it.
    """

    def __init__(
        self,
        executors: Mapping[str, object],
        jobs: int,
        *,
        queue_depth: int | None = None,
        progress: ProgressReporter | None = None,
        on_complete: Callable[[BatchTask, ExecutionOutcome, int], None]
        | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._executors = dict(executors)
        self._jobs = jobs
        if queue_depth is None:
            queue_depth = max(2, 2 * jobs)
        self._queue_depth = queue_depth
        self._progress = progress
        self._on_complete = on_complete
        self._complete_lock = threading.Lock()
        self.worker_stats: list[WorkerStats] = []
        # Resident-pool state (all None/empty until start()).
        self._queue: DispatchQueue | None = None
        self._threads: dict[int, threading.Thread] = {}
        self._threads_lock = threading.Lock()
        self._stop = threading.Event()
        self._accepting = False
        self._stop_on_error = False
        self._recycle_after: int | None = None
        self._errors: list[BaseException] = []
        self._pending = 0
        self._pending_cv = threading.Condition()

    # ------------------------------------------------------------------
    # resident lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True while a dispatcher pool is alive."""
        return self._queue is not None

    @property
    def jobs(self) -> int:
        """Number of dispatcher slots."""
        return self._jobs

    def start(
        self,
        *,
        recycle_after: int | None = None,
        stop_on_error: bool = False,
    ) -> "BatchScheduler":
        """Bring up the resident dispatcher pool.

        ``recycle_after`` replaces each dispatcher thread after it has
        handled that many tasks (leak hygiene for week-long serving
        processes).  ``stop_on_error`` is the one-shot suite semantic —
        the first executor exception cancels everything still queued;
        resident serving leaves it off so one poisoned request cannot
        take the pool down.
        """
        if self.started:
            raise RuntimeError("scheduler already started")
        if recycle_after is not None and recycle_after < 1:
            raise ValueError("recycle_after must be >= 1")
        self._queue = DispatchQueue(maxsize=self._queue_depth)
        self._stop = threading.Event()
        self._accepting = True
        self._stop_on_error = stop_on_error
        self._recycle_after = recycle_after
        self._errors = []
        self._pending = 0
        self.worker_stats = [WorkerStats(i) for i in range(self._jobs)]
        with self._threads_lock:
            for slot in range(self._jobs):
                self._spawn(slot)
        return self

    def _spawn(self, slot: int) -> None:
        """Start (or replace) the dispatcher thread for ``slot``.

        Caller holds ``_threads_lock``.
        """
        thread = threading.Thread(
            target=self._dispatch,
            args=(slot,),
            name=f"batch-worker-{slot}",
            daemon=True,
        )
        self._threads[slot] = thread
        thread.start()

    def submit(self, task: BatchTask) -> Future:
        """Queue one batch task; returns a future for its outcome.

        The future resolves to the task's
        :class:`~repro.runtime.executor.ExecutionOutcome`; an executor
        that *raises* (a bug — the fault-tolerant contract is to
        return failed outcomes) surfaces as the future's exception.
        """
        if task.algorithm not in self._executors:
            raise ValueError(
                f"no executor for algorithm {task.algorithm!r}"
            )
        executor = self._executors[task.algorithm]

        def fn() -> ExecutionOutcome:
            return executor.run(task.function, task.timeout)

        return self._enqueue(_Job(task.label, fn, task))

    def submit_call(
        self,
        label: str,
        fn: Callable[[], ExecutionOutcome],
        *,
        priority: int = PRIORITY_BANDS["normal"],
        deadline: float | None = None,
    ) -> Future:
        """Queue an arbitrary synthesis closure on the pool.

        The serving layer uses this for work that is not a plain
        ``(algorithm, function)`` pair — e.g. multi-output specs, or a
        canonical-representative synthesis shared by coalesced
        requests.  ``fn`` runs on a dispatcher thread and its return
        value resolves the future.

        ``priority`` is a dispatch band (smaller = dispatched first)
        and ``deadline`` an absolute ``time.monotonic()`` instant: the
        queue dispatches earliest-deadline-first within a band, and a
        job still queued past its deadline resolves its future with
        :class:`~repro.parallel.dispatch.DeadlineExpired` without ever
        occupying a worker.
        """
        return self._enqueue(
            _Job(label, fn, band=priority, deadline=deadline)
        )

    def _enqueue(self, job: _Job) -> Future:
        work = self._queue
        if work is None or not self._accepting:
            raise RuntimeError("scheduler is not accepting work")
        with self._pending_cv:
            self._pending += 1
        # A timeout loop instead of a blocking put keeps submitters
        # responsive to shutdown — a dead pool must not wedge callers
        # on a full queue.
        while True:
            if self._stop.is_set():
                self._cancel_job(job)
                return job.future
            try:
                work.put(
                    job,
                    band=job.band,
                    deadline=job.deadline,
                    timeout=0.1,
                )
                return job.future
            except queue.Full:
                continue

    def backlog(self) -> int:
        """Jobs submitted but not yet finished (queued + in flight)."""
        with self._pending_cv:
            return self._pending

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job has finished.

        Returns False if ``timeout`` elapsed first.  Does not stop the
        pool — pair with :meth:`shutdown` for teardown, or keep
        serving after the queue empties.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._pending_cv:
            while self._pending > 0:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._pending_cv.wait(timeout=remaining)
        return True

    def shutdown(self, *, cancel_queued: bool = False) -> None:
        """Stop the pool: no new work, dispatchers exit after the queue.

        With ``cancel_queued`` the queue is discarded (futures cancel)
        instead of being worked off first.  Idempotent; safe from any
        thread except a dispatcher's own.
        """
        work = self._queue
        if work is None:
            return
        self._accepting = False
        if cancel_queued:
            self._stop.set()
            self._cancel_queued(work)
        # One sentinel per slot; recycling is disabled once accepting
        # is off, so each sentinel retires exactly one dispatcher.
        # Sentinels ride the lowest-urgency band so dispatchers only
        # see them once every real job has been worked off.
        for _ in range(self._jobs):
            while True:
                try:
                    work.put(
                        _SENTINEL, band=SENTINEL_BAND, timeout=0.1
                    )
                    break
                except queue.Full:  # pragma: no cover - timing dependent
                    if self._stop.is_set():
                        self._cancel_queued(work)
        while True:
            with self._threads_lock:
                threads = list(self._threads.values())
            alive = [t for t in threads if t.is_alive()]
            if not alive:
                break
            for thread in alive:
                thread.join(timeout=0.2)
        with self._threads_lock:
            self._threads.clear()
        self._queue = None

    def _cancel_queued(self, work: DispatchQueue) -> None:
        """Drop queued jobs, cancelling their futures."""
        while True:
            try:
                job = work.get_nowait()
            except queue.Empty:
                return
            if job is not _SENTINEL:
                self._cancel_job(job)

    def _cancel_job(self, job: _Job) -> None:
        """Resolve a never-run job as cancelled.

        ``cancel()`` alone leaves the future merely CANCELLED;
        ``set_running_or_notify_cancel()`` moves it to
        CANCELLED_AND_NOTIFIED so waiters (``concurrent.futures.wait``,
        ``asyncio.wrap_future``) actually wake up.
        """
        job.future.cancel()
        job.future.set_running_or_notify_cancel()
        self._job_done()

    def _job_done(self) -> None:
        with self._pending_cv:
            self._pending -= 1
            if self._pending <= 0:
                self._pending_cv.notify_all()

    # ------------------------------------------------------------------
    # one-shot suite API (thin wrapper over the resident pool)
    # ------------------------------------------------------------------
    def run(
        self, tasks: Sequence[BatchTask]
    ) -> list[ExecutionOutcome | None]:
        """Execute every task; returns outcomes in *task-list order*.

        Dispatch order is longest-expected-first, but the returned
        list lines up index-for-index with ``tasks``, so callers see a
        deterministic order regardless of ``jobs``.  A
        ``KeyboardInterrupt`` stops feeding, lets in-flight instances
        finish (their hard timeouts still apply), and re-raises;
        completed outcomes up to that point are visible only via
        ``on_complete`` side effects.  The first executor exception
        cancels the rest of the batch and re-raises here.
        """
        indexes = {task.index for task in tasks}
        if len(indexes) != len(tasks):
            raise ValueError("task indexes must be unique")
        for task in tasks:
            if task.algorithm not in self._executors:
                raise ValueError(
                    f"no executor for algorithm {task.algorithm!r}"
                )
        if not tasks:
            return []
        order = sorted(
            tasks,
            key=lambda t: (expected_cost(t.function), -t.index),
            reverse=True,
        )
        self.start(stop_on_error=True)
        futures: dict[int, Future] = {}
        interrupted: BaseException | None = None
        try:
            for task in order:
                futures[task.index] = self.submit(task)
                if self._stop.is_set():
                    break
            # Short-timeout polling keeps the main thread responsive
            # to Ctrl-C while dispatcher threads work the queue.
            unresolved = set(futures.values())
            while unresolved:
                _done, unresolved = _wait_futures(
                    unresolved, timeout=0.2
                )
        except KeyboardInterrupt as exc:
            interrupted = exc
            self._stop.set()
        finally:
            self.shutdown(cancel_queued=self._stop.is_set())
        if interrupted is not None:
            raise interrupted
        if self._errors:
            raise self._errors[0]
        results: list[ExecutionOutcome | None] = []
        for task in tasks:
            future = futures.get(task.index)
            if (
                future is None
                or future.cancelled()
                or future.exception() is not None
            ):
                results.append(None)
            else:
                results.append(future.result())
        return results

    # ------------------------------------------------------------------
    # dispatcher internals
    # ------------------------------------------------------------------
    def _dispatch(self, slot: int) -> None:
        stats = self.worker_stats[slot]
        work = self._queue
        handled = 0
        while True:
            job, lapsed = work.get()
            if job is _SENTINEL:
                return
            if self._stop.is_set():
                self._cancel_job(job)
                continue  # drain without executing
            if not job.future.set_running_or_notify_cancel():
                self._job_done()
                continue
            if lapsed:
                # Deadline lapsed while queued: answer in O(1), never
                # occupy this worker with the actual synthesis.
                stats.expired += 1
                job.future.set_exception(
                    DeadlineExpired(
                        f"{job.label}: deadline lapsed in queue"
                    )
                )
                self._job_done()
                continue
            started = time.perf_counter()
            try:
                outcome = job.fn()
            except BaseException as exc:
                stats.record_crash(time.perf_counter() - started)
                self._errors.append(exc)
                if self._stop_on_error:
                    self._stop.set()
                job.future.set_exception(exc)
                self._job_done()
                continue
            elapsed = time.perf_counter() - started
            # submit_call closures may return arbitrary values; only
            # real outcomes feed the status-specific accounting.
            is_outcome = isinstance(outcome, ExecutionOutcome)
            if is_outcome:
                stats.record(outcome, elapsed)
            else:
                stats.tasks += 1
                stats.busy_seconds += elapsed
            with self._complete_lock:
                if self._on_complete is not None and job.task is not None:
                    try:
                        self._on_complete(job.task, outcome, slot)
                    except BaseException as exc:
                        self._errors.append(exc)
                        if self._stop_on_error:
                            self._stop.set()
                        job.future.set_exception(exc)
                        self._job_done()
                        continue
                if self._progress is not None:
                    status = "done"
                    if is_outcome:
                        status = outcome.status + (
                            f" {outcome.runtime:.3f}s"
                            if outcome.solved
                            else ""
                        )
                    self._progress.tick(job.label, status, slot)
            job.future.set_result(outcome)
            self._job_done()
            handled += 1
            if (
                self._recycle_after is not None
                and handled >= self._recycle_after
                and self._accepting
                and not self._stop.is_set()
            ):
                stats.recycled += 1
                with self._threads_lock:
                    # Shutdown may have flipped _accepting since the
                    # check; a sentinel posted before the replacement
                    # starts is still consumed by it, so the handoff
                    # is race-free either way.
                    self._spawn(slot)
                return
