"""Parallel batch-synthesis scheduling.

The scheduler (:mod:`~repro.parallel.scheduler`) shards suite
instances across ``jobs`` concurrent fault-tolerant executors — each
instance still runs in its own isolated, rlimit-capped worker process
with a hard wall-clock kill — with a bounded work queue,
longest-expected-first dispatch, per-worker fault accounting, and live
progress (:mod:`~repro.parallel.progress`).  ``run_suite(jobs=N)``,
``repro-table1 --jobs N``, and the ``repro-batch`` CLI
(:mod:`~repro.parallel.cli`) all drive it.
"""

from .dispatch import (
    PRIORITY_BANDS,
    DeadlineExpired,
    DispatchQueue,
    normalize_priority,
)
from .progress import ProgressReporter
from .scheduler import BatchScheduler, BatchTask, WorkerStats, expected_cost

__all__ = [
    "BatchScheduler",
    "BatchTask",
    "WorkerStats",
    "expected_cost",
    "ProgressReporter",
    "DispatchQueue",
    "DeadlineExpired",
    "PRIORITY_BANDS",
    "normalize_priority",
]
