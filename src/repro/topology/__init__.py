"""DAG topology families: Boolean fences and pDAG enumeration."""

from .fence import (
    Fence,
    all_fences,
    count_fences,
    fences_of_level,
    is_valid_fence,
    valid_fences,
)
from .dag import DagTopology, count_dags, enumerate_dags, enumerate_skeletons

__all__ = [
    "Fence",
    "all_fences",
    "count_fences",
    "fences_of_level",
    "is_valid_fence",
    "valid_fences",
    "DagTopology",
    "count_dags",
    "enumerate_dags",
    "enumerate_skeletons",
]
