"""DAG enumeration from fences (Section III-A, Fig. 3).

For a fence and a number of primary inputs this module enumerates every
*possible DAG* (``pDAG``): an assignment of two distinct fanins to each
internal node such that

* every node takes fanins from strictly lower levels, at least one of
  them from the level immediately below (which is what pins the node to
  its level),
* every internal node except the single top node is consumed by a later
  node (no dangling gates), and
* optionally, every primary input is referenced (required when the
  target function depends on all inputs).

Same-level symmetry is broken by requiring the fanin pairs of nodes
within one level to be lexicographically non-decreasing, so families of
isomorphic DAGs are enumerated once.  :func:`enumerate_skeletons`
additionally abstracts PI identities away for the Fig. 3-style counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from .fence import Fence

__all__ = ["DagTopology", "enumerate_dags", "enumerate_skeletons", "count_dags"]


@dataclass(frozen=True)
class DagTopology:
    """A pDAG: connectivity only, operators not yet assigned.

    Signals ``0 … num_pis-1`` are primary inputs; signal ``num_pis + i``
    is internal node ``i``.  ``fanins[i]`` is the (sorted) fanin pair of
    node ``i``; nodes appear level by level, bottom first.
    """

    num_pis: int
    fanins: tuple[tuple[int, int], ...]
    fence: Fence

    @property
    def num_nodes(self) -> int:
        """Number of internal nodes."""
        return len(self.fanins)

    @property
    def top_signal(self) -> int:
        """The output node's signal index."""
        return self.num_pis + self.num_nodes - 1

    def level_of(self, signal: int) -> int:
        """Logic level of a signal (PIs are level 0)."""
        if signal < self.num_pis:
            return 0
        levels = self._levels()
        return levels[signal]

    def _levels(self) -> list[int]:
        levels = [0] * (self.num_pis + self.num_nodes)
        for i, (a, b) in enumerate(self.fanins):
            levels[self.num_pis + i] = 1 + max(levels[a], levels[b])
        return levels

    def support_of(self, signal: int) -> frozenset[int]:
        """Primary inputs reachable from a signal."""
        if signal < self.num_pis:
            return frozenset((signal,))
        a, b = self.fanins[signal - self.num_pis]
        return self.support_of(a) | self.support_of(b)

    def references_all_pis(self) -> bool:
        """True when every primary input feeds some node."""
        used: set[int] = set()
        for a, b in self.fanins:
            used.update(s for s in (a, b) if s < self.num_pis)
        return len(used) == self.num_pis

    def describe(self) -> str:
        """One-line structural summary."""
        parts = []
        for i, (a, b) in enumerate(self.fanins):
            parts.append(f"n{self.num_pis + i}=({a},{b})")
        return f"pis={self.num_pis} " + " ".join(parts)


def enumerate_dags(
    fence: Fence,
    num_pis: int,
    require_all_pis: bool = True,
) -> Iterator[DagTopology]:
    """Yield every pDAG of a fence over ``num_pis`` labelled inputs."""
    if any(s < 1 for s in fence):
        raise ValueError("fence levels must be positive")
    num_nodes = sum(fence)
    # Signals available per level: level 0 = PIs.
    level_of_signal = [0] * num_pis
    for level, size in enumerate(fence, start=1):
        level_of_signal.extend([level] * size)

    node_levels = level_of_signal[num_pis:]

    def candidate_pairs(node_index: int) -> list[tuple[int, int]]:
        level = node_levels[node_index]
        lower = [
            s
            for s in range(num_pis + node_index)
            if level_of_signal[s] < level
        ]
        pairs = []
        for a, b in itertools.combinations(lower, 2):
            if (
                level_of_signal[a] == level - 1
                or level_of_signal[b] == level - 1
            ):
                pairs.append((a, b))
        return pairs

    def fill(
        node_index: int, chosen: list[tuple[int, int]]
    ) -> Iterator[DagTopology]:
        if node_index == num_nodes:
            dag = DagTopology(num_pis, tuple(chosen), tuple(fence))
            if _no_dangling(dag) and (
                not require_all_pis or dag.references_all_pis()
            ):
                yield dag
            return
        for pair in candidate_pairs(node_index):
            # Break same-level symmetry: within a level, fanin pairs
            # must be non-decreasing.
            if (
                node_index > 0
                and node_levels[node_index] == node_levels[node_index - 1]
                and pair < chosen[-1]
            ):
                continue
            chosen.append(pair)
            yield from fill(node_index + 1, chosen)
            chosen.pop()

    yield from fill(0, [])


def _no_dangling(dag: DagTopology) -> bool:
    used = set()
    for a, b in dag.fanins:
        used.add(a)
        used.add(b)
    for node in range(dag.num_nodes - 1):  # top node may dangle (it's PO)
        if dag.num_pis + node not in used:
            return False
    return True


def enumerate_skeletons(fence: Fence) -> list[DagTopology]:
    """Fig. 3-style structural DAGs: node-to-node connectivity with PI
    connections anonymised.

    Internally enumerates over a generic pool of two PIs (enough to
    distinguish "takes two distinct lower nodes" from "takes a node and
    an input"), then deduplicates by the internal wiring pattern.
    """
    seen: set[tuple] = set()
    result: list[DagTopology] = []
    for dag in enumerate_dags(fence, num_pis=2, require_all_pis=False):
        key = tuple(
            tuple(s if s >= dag.num_pis else -1 for s in pair)
            for pair in dag.fanins
        )
        if key in seen:
            continue
        seen.add(key)
        result.append(dag)
    return result


def count_dags(fence: Fence, num_pis: int, require_all_pis: bool = True) -> int:
    """Number of pDAGs of a fence."""
    return sum(1 for _ in enumerate_dags(fence, num_pis, require_all_pis))
