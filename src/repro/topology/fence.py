"""Boolean fences — DAG topology families (Section III-A, Fig. 2).

A *fence* partitions ``k`` internal nodes over ``l`` levels with every
level non-empty (Haaswijk et al., "SAT based exact synthesis using DAG
topology families").  ``F(k, l)`` is the set of fences with exactly
``l`` levels and ``F_k`` their union over ``1 <= l <= k``.

The paper prunes ``F_k`` for single-output, 2-input-operator chains:

* the top level must contain exactly one node (the output), and
* every level must be *consumable* from above — nodes above level ``i``
  have ``2 · (#nodes above)`` fanin slots, so a level may not hold more
  nodes than that ("no more than two nodes between a higher logic level
  and each lower logic level").

Fences are tuples of level sizes, bottom level first.
"""

from __future__ import annotations

from typing import Iterator, Sequence

__all__ = [
    "Fence",
    "all_fences",
    "fences_of_level",
    "valid_fences",
    "is_valid_fence",
    "count_fences",
]

Fence = tuple[int, ...]


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Ordered partitions of ``total`` into ``parts`` positive integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def fences_of_level(k: int, l: int) -> list[Fence]:
    """The Boolean fence family ``F(k, l)``."""
    if not 1 <= l <= k:
        raise ValueError(f"need 1 <= l <= k, got l={l}, k={k}")
    return list(_compositions(k, l))


def all_fences(k: int) -> list[Fence]:
    """The unpruned family ``F_k`` (Fig. 2a)."""
    if k < 1:
        raise ValueError("k must be positive")
    result: list[Fence] = []
    for l in range(1, k + 1):
        result.extend(fences_of_level(k, l))
    return result


def is_valid_fence(fence: Sequence[int]) -> bool:
    """Apply the paper's pruning rules to one fence."""
    sizes = tuple(fence)
    if not sizes or any(s < 1 for s in sizes):
        return False
    if sizes[-1] != 1:
        return False  # single output node on top
    # Capacity rule: nodes strictly above level i supply 2 fanin slots
    # each; level i cannot exceed that capacity.
    for i in range(len(sizes) - 1):
        capacity = 2 * sum(sizes[i + 1:])
        if sizes[i] > capacity:
            return False
    return True


def valid_fences(k: int) -> list[Fence]:
    """The pruned family used by the paper's algorithm (Fig. 2b)."""
    return [f for f in all_fences(k) if is_valid_fence(f)]


def count_fences(k: int, pruned: bool = False) -> int:
    """Size of ``F_k``, optionally after pruning."""
    return len(valid_fences(k) if pruned else all_fences(k))
