"""Ablations of the design choices DESIGN.md calls out.

* canonical (normal-form) search + polarity expansion vs full-polarity
  enumeration inside the factorization engine,
* the exact 3-variable size-bound prune vs the generic ``support - 1``
  bound,
* hierarchical (DSD-first) STP vs the flat DAG engine,
* the STP circuit AllSAT verifier vs plain truth-table simulation,
* the cross-call topology cache vs per-call fence/DAG re-enumeration.
"""

import pytest

from repro.cache import SynthesisCache
from repro.core import (
    FactorizationEngine,
    SynthesisContext,
    SynthesisSpec,
    run_pipeline,
    verify_chain,
)
from repro.core.sizebound import min_gates_lower_bound
from repro.engine import create_engine, run_engine
from repro.truthtable import from_hex, majority

MAJ = majority(3)

# A small NPN4 subset: the paper's running example plus three
# structurally distinct 4-input functions.
NPN4_SUBSET = ["8ff8", "1ee1", "0357", "6996"]


@pytest.mark.parametrize("canonical", [True, False])
def test_ablation_canonical_factorization(benchmark, canonical):
    """Normal-form pinning should shrink the factorization output."""
    engine = FactorizationEngine(3, operators=(0x1, 0x2, 0x4, 0x6, 0x7, 0x8, 0x9, 0xB, 0xD, 0xE))
    cone_a, cone_b = (0, 1), (1, 2)

    def decompose():
        return engine.decompositions(
            MAJ, cone_a, cone_b, canonical=canonical
        )

    result = benchmark(decompose)
    if canonical:
        assert all(
            fac.g_a.value(0) == 0 and fac.g_b.value(0) == 0
            for fac in result
        )


def test_ablation_size_bound(benchmark):
    """The exact 3-var bound dominates the generic support bound."""

    def bounds():
        tight = 0
        for bits in range(0, 256, 7):
            from repro.truthtable import TruthTable

            t = TruthTable(bits, 3)
            generic = max(0, t.support_size() - 1)
            exact = min_gates_lower_bound(t)
            assert exact >= generic
            if exact > generic:
                tight += 1
        return tight

    tighter = benchmark(bounds)
    assert tighter > 0


def test_ablation_flat_vs_hierarchical(benchmark):
    """On a DSD-structured function the hierarchical path must win big;
    both must agree on the optimal gate count."""
    f = from_hex("8ff8", 4)  # or(and(a,b), xor(c,d)) — fully DSD

    def hierarchical():
        return run_engine("hier", f, timeout=60, max_solutions=16)

    result = benchmark(hierarchical)
    flat = create_engine("stp", all_solutions=False).synthesize(
        SynthesisSpec(function=f, timeout=60)
    )
    assert result.num_gates == flat.num_gates == 3


def test_ablation_circuit_sat_verifier(benchmark):
    """The circuit AllSAT verifier agrees with direct simulation."""
    result = run_engine("stp", MAJ, timeout=60, max_solutions=8)
    chains = result.chains

    def verify_all():
        return [verify_chain(c, MAJ) for c in chains]

    verdicts = benchmark(verify_all)
    assert all(verdicts)
    assert all(c.simulate_output() == MAJ for c in chains)


@pytest.mark.parametrize("cached", [True, False], ids=["cache-on", "cache-off"])
def test_ablation_topology_cache(benchmark, cached):
    """A warm topology/factorization cache vs per-call re-enumeration.

    Runs the same NPN4 subset either against one shared warm
    ``SynthesisCache`` (steady-state ``run_suite`` behaviour) or with
    caching disabled (every call re-enumerates fences and DAGs, the
    pre-cache behaviour).  Results must be identical either way; the
    cache-on timing should be measurably below cache-off.
    """
    functions = [from_hex(bits, 4) for bits in NPN4_SUBSET]
    shared = SynthesisCache(enabled=cached)

    def run_subset():
        sizes = []
        for f in functions:
            ctx = SynthesisContext.create(timeout=60, cache=shared)
            result = run_pipeline(
                SynthesisSpec(function=f, timeout=60, max_solutions=8),
                ctx,
            )
            sizes.append(result.num_gates)
        return sizes

    if cached:
        run_subset()  # warm the cache; measure steady state

    sizes = benchmark(run_subset)
    assert sizes == [3, 3, 3, 3]
    if cached:
        assert shared.topology.hits > 0
