"""Table I, fdsd6 row: BMS / FEN / ABC(lutexact) / STP on a
scaled-down fdsd6 sample (full row: `python -m repro.bench.table1
--suite fdsd6`).  Paper reference values are recorded in
EXPERIMENTS.md."""

import pytest

from conftest import run_table1_row


@pytest.mark.parametrize("algorithm", ["BMS", "FEN", "ABC", "STP"])
def test_table1_fdsd6(benchmark, algorithm):
    run_table1_row(benchmark, "fdsd6", algorithm)
