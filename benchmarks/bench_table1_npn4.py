"""Table I, npn4 row: BMS / FEN / ABC(lutexact) / STP on a
scaled-down npn4 sample (full row: `python -m repro.bench.table1
--suite npn4`).  Paper reference values are recorded in
EXPERIMENTS.md."""

import pytest

from conftest import run_table1_row


@pytest.mark.parametrize("algorithm", ["BMS", "FEN", "ABC", "STP"])
def test_table1_npn4(benchmark, algorithm):
    run_table1_row(benchmark, "npn4", algorithm)
