"""Table I, pdsd6 row: BMS / FEN / ABC(lutexact) / STP on a
scaled-down pdsd6 sample (full row: `python -m repro.bench.table1
--suite pdsd6`).  Paper reference values are recorded in
EXPERIMENTS.md."""

import pytest

from conftest import run_table1_row


@pytest.mark.parametrize("algorithm", ["BMS", "FEN", "ABC", "STP"])
def test_table1_pdsd6(benchmark, algorithm):
    run_table1_row(benchmark, "pdsd6", algorithm)
