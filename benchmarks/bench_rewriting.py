"""Store-backed rewriting benchmark over the checked-in BLIF suite.

Runs every circuit in ``benchmarks/circuits/`` through
:func:`repro.network.rewrite.rewrite_with_store` twice — once against
a cold (empty) chain store and once against the store the cold pass
just warmed — and writes a JSON report with gate-count reductions,
wall clocks, and store traffic::

    python benchmarks/bench_rewriting.py --json BENCH_rewriting.json

The run **gates** on three invariants:

* every rewriting pass passes the packed-simulation equivalence check
  (post-rewrite networks compute the same PO functions);
* the warm replay issues **zero** synthesis calls (every cut class is
  served from the store);
* at least one circuit shrinks (the suite is built to be reducible —
  no gain anywhere means the rewriting or store path regressed).

CI runs this on every push and uploads the JSON as an artifact.
"""

import argparse
import glob
import json
import os
import sys
import tempfile
import time

from repro.network import blif_to_network, rewrite_with_store
from repro.store import ChainStore

DEFAULT_CIRCUITS = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "circuits"
)


def _load(path):
    with open(path) as handle:
        return blif_to_network(handle.read())


def _run_pass(path, store, args):
    network = _load(path)
    started = time.perf_counter()
    result = rewrite_with_store(
        network,
        store,
        cut_size=args.cut_size,
        race=args.race,
        timeout_per_cut=args.timeout_per_cut,
    )
    seconds = time.perf_counter() - started
    return {
        "gates_before": result.gates_before,
        "gates_after": result.gates_after,
        "gain": result.gain,
        "replacements": result.replacements,
        "cuts_tried": result.cuts_tried,
        "store_hits": result.store_hits,
        "store_misses": result.store_misses,
        "synthesis_calls": result.synthesis_calls,
        "verified": result.verified,
        "seconds": round(seconds, 4),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark store-backed network rewriting "
        "(cold vs warm store)."
    )
    parser.add_argument(
        "--circuits",
        default=DEFAULT_CIRCUITS,
        help="directory of BLIF circuits",
    )
    parser.add_argument("--cut-size", type=int, default=4)
    parser.add_argument("--timeout-per-cut", type=float, default=30.0)
    parser.add_argument(
        "--race",
        action="store_true",
        help="race the engine portfolio on store misses",
    )
    parser.add_argument("--json", default=None, help="report path")
    args = parser.parse_args(argv)

    paths = sorted(glob.glob(os.path.join(args.circuits, "*.blif")))
    if not paths:
        print(f"no circuits under {args.circuits}", file=sys.stderr)
        return 1

    rows = []
    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-rewriting-") as tmp:
        with ChainStore(os.path.join(tmp, "store.db")) as store:
            for path in paths:
                name = os.path.splitext(os.path.basename(path))[0]
                cold = _run_pass(path, store, args)
                warm = _run_pass(path, store, args)
                rows.append({"circuit": name, "cold": cold, "warm": warm})
                print(
                    f"{name}: {cold['gates_before']} -> "
                    f"{cold['gates_after']} gates "
                    f"(cold {cold['seconds']:.3f}s / "
                    f"{cold['synthesis_calls']} synth, "
                    f"warm {warm['seconds']:.3f}s / "
                    f"{warm['synthesis_calls']} synth)"
                )
                if not (cold["verified"] and warm["verified"]):
                    failures.append(f"{name}: equivalence check failed")
                if warm["synthesis_calls"] != 0:
                    failures.append(
                        f"{name}: warm replay hit the synthesizer "
                        f"{warm['synthesis_calls']} time(s)"
                    )
                if warm["gain"] != cold["gain"]:
                    failures.append(
                        f"{name}: warm gain {warm['gain']} != "
                        f"cold gain {cold['gain']}"
                    )
            counters = store.counters()

    if not any(row["cold"]["gain"] > 0 for row in rows):
        failures.append("no circuit shrank: rewriting found zero gains")

    total_before = sum(r["cold"]["gates_before"] for r in rows)
    total_after = sum(r["cold"]["gates_after"] for r in rows)
    cold_seconds = sum(r["cold"]["seconds"] for r in rows)
    warm_seconds = sum(r["warm"]["seconds"] for r in rows)
    report = {
        "suite": args.circuits,
        "circuits": rows,
        "total_gates_before": total_before,
        "total_gates_after": total_after,
        "total_reduction_pct": round(
            100.0 * (total_before - total_after) / max(1, total_before),
            2,
        ),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(
            cold_seconds / warm_seconds if warm_seconds > 0 else 0.0, 2
        ),
        "store": counters,
        "gate_failures": failures,
    }
    print(
        f"total: {total_before} -> {total_after} gates "
        f"({report['total_reduction_pct']}% smaller), "
        f"warm replay {report['warm_speedup']}x faster"
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
