"""Benchmarks of the application layer: cut enumeration and
exact-synthesis-based rewriting over random LUT networks."""

import random

import pytest

from repro.core import NPNDatabase
from repro.network import LogicNetwork, enumerate_cuts, rewrite_network
from repro.truthtable import TruthTable


def random_network(seed, num_pis=5, num_nodes=12):
    rnd = random.Random(seed)
    net = LogicNetwork()
    nodes = [net.add_pi() for _ in range(num_pis)]
    for _ in range(num_nodes):
        k = rnd.choice([1, 2, 2, 3])
        fanins = [rnd.choice(nodes) for _ in range(k)]
        nodes.append(
            net.add_node(TruthTable(rnd.getrandbits(1 << k), k), fanins)
        )
    net.add_po(nodes[-1])
    return net


@pytest.mark.parametrize("num_nodes", [10, 20, 40])
def test_bench_cut_enumeration(benchmark, num_nodes):
    net = random_network(3, num_nodes=num_nodes)
    cuts = benchmark(lambda: enumerate_cuts(net, k=4))
    assert len(cuts) >= num_nodes


def test_bench_rewrite_pass(benchmark):
    database = NPNDatabase(timeout=30)
    # Warm the database outside the measured region.
    warm = random_network(1)
    rewrite_network(warm, database=database)

    def once():
        net = random_network(2)
        before = [t.bits for t in net.simulate()]
        result = rewrite_network(net, database=database)
        after = [t.bits for t in net.simulate()]
        assert before == after
        return result

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.gates_after <= result.gates_before
