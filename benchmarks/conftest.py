"""Shared helpers for the Table-I / figure benchmarks.

Each ``bench_table1_*.py`` file regenerates one row of the paper's
Table I on a scaled-down sample (pure-Python engines are orders of
magnitude slower than the paper's C++; see EXPERIMENTS.md for the
mapping).  The full-size rows are produced by the CLI harness::

    python -m repro.bench.table1 --suite npn4 --full

Benchmarks run each measurement exactly once (``pedantic`` mode): the
workloads are seconds-scale searches, not microbenchmarks.
"""

from __future__ import annotations


from repro.bench.runner import default_algorithms, run_suite
from repro.bench.suites import get_suite

#: Per-suite scaled-down sample sizes and timeouts for CI-speed runs.
BENCH_SCALE = {
    "npn4": (5, 30.0),
    "fdsd6": (8, 30.0),
    "fdsd8": (4, 30.0),
    "pdsd6": (3, 30.0),
    "pdsd8": (2, 45.0),
}


def run_table1_row(benchmark, suite_name: str, algorithm_name: str):
    """Benchmark one algorithm on a scaled-down sample of one suite and
    attach the paper's Table-I statistics as extra info."""
    count, timeout = BENCH_SCALE[suite_name]
    functions = get_suite(suite_name, count)
    algorithms = [
        a
        for a in default_algorithms(max_solutions=128)
        if a.name == algorithm_name
    ]
    assert algorithms, f"unknown algorithm {algorithm_name}"

    def once():
        return run_suite(suite_name, functions, algorithms, timeout)

    reports = benchmark.pedantic(once, rounds=1, iterations=1)
    report = reports[0]
    benchmark.extra_info["suite"] = suite_name
    benchmark.extra_info["instances"] = len(functions)
    benchmark.extra_info["mean_s"] = report.mean_time
    benchmark.extra_info["timeouts"] = report.num_timeouts
    benchmark.extra_info["ok"] = report.num_ok
    if algorithm_name == "STP":
        benchmark.extra_info["total_s"] = report.total_time
        benchmark.extra_info["mean_solutions"] = report.mean_solutions
    # Timeouts are legitimate row content (the paper's #t/o column):
    # every instance must be accounted for, solved or timed out.
    assert report.num_ok + report.num_timeouts == len(functions)
    return report
