"""Fig. 3: all valid DAGs of the fence family ``F_3``.

Regenerates the structural pDAG skeletons of the pruned ``F_3``
fences (the paper's Fig. 3) and the fully PI-labelled pDAG counts the
synthesizer actually searches (Example 7 draws one of the labelled
DAGs of fence ``(2, 1)`` with four inputs).
"""

import pytest

from repro.topology import enumerate_dags, enumerate_skeletons, valid_fences


def test_fig3_f3_skeletons(benchmark):
    def skeletons():
        return {
            fence: len(enumerate_skeletons(fence))
            for fence in valid_fences(3)
        }

    counts = benchmark(skeletons)
    assert counts[(2, 1)] >= 1
    assert counts[(1, 1, 1)] >= 1


@pytest.mark.parametrize("num_pis", [3, 4, 5])
def test_fig3_labelled_dags(benchmark, num_pis):
    # Three 2-input gates can touch at most four distinct PIs when all
    # must be used, so for five PIs we count partial-coverage DAGs.
    require_all = num_pis <= 4

    def labelled():
        return sum(
            sum(
                1
                for _ in enumerate_dags(
                    fence, num_pis, require_all_pis=require_all
                )
            )
            for fence in valid_fences(3)
        )

    count = benchmark(labelled)
    assert count > 0


def test_fig3_example7_dag_present(benchmark):
    """The DAG of Example 7 — x6=(a,b), x5=(c,d), x7=(x5,x6) — must be
    among the labelled DAGs of fence (2,1) with four inputs."""

    def find():
        return [
            dag.fanins
            for dag in enumerate_dags((2, 1), 4)
        ]

    fanin_sets = benchmark(find)
    assert ((0, 1), (2, 3), (4, 5)) in fanin_sets
