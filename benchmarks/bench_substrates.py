"""Microbenchmarks of the substrates the synthesizer is built on:
STP matrix algebra, canonical forms, the CDCL SAT solver, NPN
canonicalization and DSD decomposition."""

import random


from repro.sat import CNF, solve_cnf
from repro.stp import stp, truth_table_to_canonical
from repro.truthtable import TruthTable, canonicalize, dsd_decompose
import numpy as np


def test_bench_stp_product(benchmark):
    rng = np.random.default_rng(7)
    x = rng.integers(0, 2, size=(2, 16))
    y = rng.integers(0, 2, size=(4, 4))

    result = benchmark(lambda: stp(x, y))
    assert result.shape[0] == 2


def test_bench_canonical_form_8var(benchmark):
    rng = random.Random(11)
    table = TruthTable(rng.getrandbits(256), 8)
    matrix = benchmark(lambda: truth_table_to_canonical(table))
    assert matrix.shape == (2, 256)


def test_bench_cdcl_random3sat(benchmark):
    rng = random.Random(3)
    n, m = 40, 160
    cnf = CNF(n)
    for _ in range(m):
        clause = set()
        while len(clause) < 3:
            v = rng.randint(1, n)
            clause.add(v if rng.random() < 0.5 else -v)
        cnf.add_clause(clause)

    benchmark(lambda: solve_cnf(cnf))


def test_bench_npn_canonicalize(benchmark):
    rng = random.Random(5)
    tables = [TruthTable(rng.getrandbits(16), 4) for _ in range(5)]

    def canon_all():
        return [canonicalize(t)[0] for t in tables]

    reps = benchmark(canon_all)
    assert len(reps) == 5


def test_bench_dsd_decompose(benchmark):
    from repro.truthtable import random_fully_dsd

    rng = random.Random(9)
    table = random_fully_dsd(8, rng)
    tree = benchmark(lambda: dsd_decompose(table))
    assert tree.max_prime_arity() == 0
