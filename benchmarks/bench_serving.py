"""Async load benchmark for the ``repro-serve`` synthesis server.

Boots the full serving stack in-process (store → persistent scheduler
pool → NPN-coalescing service → HTTP front-end), pre-warms the chain
store by requesting every NPN class representative once, then fires
``--requests`` concurrent requests whose *classes* follow a Zipf
distribution — a few hot classes dominate, exactly the skew that makes
coalescing and the warm store earn their keep.  Each request is a
random orbit member of its class (random input permutation/negations +
output negation), so warm hits still exercise the store's inverse-NPN
rewrite::

    python benchmarks/bench_serving.py --requests 1000 \
        --json BENCH_serving.json

Every response body is **independently re-verified** here with the
packed AllSAT verifier — the bench gates on zero incorrect chains,
zero failed requests, and a strictly positive coalesce ratio, and
optionally on a minimum warm-store hit ratio (``--min-hit-ratio``,
used by CI against a pre-warmed store).  The JSON report carries
client-side p50/p99 latency, throughput, and the server's own
``/metrics`` snapshot.
"""

import argparse
import asyncio
import json
import random
import sys
import time

from repro.core.circuit_sat import verify_chain
from repro.parallel.scheduler import BatchScheduler
from repro.serve.ratelimit import RateLimiter
from repro.serve.server import SynthesisServer
from repro.serve.service import SynthesisService
from repro.store import ChainStore
from repro.store.serialize import chain_from_record
from repro.truthtable.npn import NPNTransform, npn_classes


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _zipf_weights(count, skew):
    return [1.0 / (rank**skew) for rank in range(1, count + 1)]


def _random_orbit_member(rng, table):
    """A uniformly-random-ish member of ``table``'s NPN orbit."""
    n = table.num_vars
    perm = list(range(n))
    rng.shuffle(perm)
    transform = NPNTransform(
        tuple(perm), rng.randrange(1 << n), bool(rng.randrange(2))
    )
    return transform.apply(table)


async def _post_json(host, port, path, payload, timeout):
    """One HTTP POST on its own connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode()
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload_bytes)


async def _get_json(host, port, path, timeout=30.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: bench\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    _, _, payload_bytes = raw.partition(b"\r\n\r\n")
    return json.loads(payload_bytes)


async def _drive(args):
    rng = random.Random(args.seed)
    reps = npn_classes(args.vars)
    store = ChainStore(args.store)
    scheduler = BatchScheduler({}, args.jobs, queue_depth=0).start(
        recycle_after=500
    )
    service = SynthesisService(
        scheduler,
        store=store,
        default_timeout=args.timeout,
        max_backlog=max(args.requests, 256),
    )
    server = SynthesisServer(
        service, port=0, rate_limiter=RateLimiter(None)
    )
    await server.start()
    host, port = server.address
    print(f"serving on {host}:{port} ({len(reps)} NPN classes)")

    warm_count = max(1, int(round(len(reps) * args.warm_fraction)))
    try:
        # Warm the *hot* classes (Zipf rank order): the timed run then
        # measures a warm-store serving plane, while the cold tail
        # still reaches the engine path — concurrent duplicates there
        # are what exercises coalescing.
        warm_started = time.perf_counter()
        for rep in reps[:warm_count]:
            status, body = await _post_json(
                host,
                port,
                "/synthesize",
                {"function": rep.to_hex(), "vars": args.vars},
                args.client_timeout,
            )
            if status != 200:
                raise SystemExit(
                    f"warmup failed for 0x{rep.to_hex()}: "
                    f"{status} {body.get('error', '')}"
                )
        warm_seconds = time.perf_counter() - warm_started
        print(
            f"warmed {warm_count}/{len(reps)} classes "
            f"in {warm_seconds:.2f}s"
        )

        # The load population: Zipf-skewed class choice, random orbit
        # member per request.
        weights = _zipf_weights(len(reps), args.skew)
        picks = rng.choices(range(len(reps)), weights, k=args.requests)
        population = [
            _random_orbit_member(rng, reps[index]) for index in picks
        ]

        gate = asyncio.Semaphore(args.concurrency)
        latencies = []
        failures = []
        bad_chains = []
        statuses = {}

        async def one(table):
            payload = {
                "function": table.to_hex(),
                "vars": args.vars,
                "max_chains": 1,
            }
            async with gate:
                started = time.perf_counter()
                try:
                    status, body = await _post_json(
                        host,
                        port,
                        "/synthesize",
                        payload,
                        args.client_timeout,
                    )
                except Exception as exc:
                    failures.append(f"{table.to_hex()}: {exc!r}")
                    return
                latencies.append(time.perf_counter() - started)
            statuses[status] = statuses.get(status, 0) + 1
            if status not in (200, 203):
                failures.append(
                    f"{table.to_hex()}: HTTP {status} "
                    f"{body.get('error', '')}"
                )
                return
            if not body.get("chains"):
                failures.append(f"{table.to_hex()}: empty chain set")
                return
            chain = chain_from_record(body["chains"][0])
            if not verify_chain(chain, table):
                bad_chains.append(table.to_hex())

        load_started = time.perf_counter()
        await asyncio.gather(*(one(t) for t in population))
        load_seconds = time.perf_counter() - load_started

        metrics = await _get_json(host, port, "/metrics")
    finally:
        await server.shutdown(drain_timeout=30.0)
        scheduler.shutdown(cancel_queued=True)
        store.close()

    serving = metrics.get("serving", {})
    report = {
        "bench": "serving",
        "vars": args.vars,
        "classes": len(reps),
        "warmed_classes": warm_count,
        "requests": args.requests,
        "concurrency": args.concurrency,
        "zipf_skew": args.skew,
        "seed": args.seed,
        "warmup_seconds": round(warm_seconds, 3),
        "load_seconds": round(load_seconds, 3),
        "throughput_rps": round(args.requests / load_seconds, 2),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000, 3),
            "p90": round(_percentile(latencies, 0.90) * 1000, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000, 3),
        },
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "failed_requests": len(failures),
        "failure_samples": failures[:10],
        "incorrect_chains": len(bad_chains),
        "coalesce_ratio": serving.get("coalesce_ratio", 0.0),
        "hit_ratio": serving.get("hit_ratio", 0.0),
        "server_metrics": metrics,
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Zipf-skewed async load benchmark for repro-serve"
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument(
        "--concurrency",
        type=int,
        default=1000,
        help="concurrent in-flight requests (socket cap)",
    )
    parser.add_argument("--vars", type=int, default=3)
    parser.add_argument(
        "--skew", type=float, default=1.1, help="Zipf exponent"
    )
    parser.add_argument(
        "--warm-fraction",
        type=float,
        default=0.5,
        help="fraction of classes (hottest first) pre-warmed into "
        "the store; the cold tail exercises coalescing",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--client-timeout", type=float, default=120.0
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--store",
        default=None,
        help="chain-store path (default: a fresh temp file per run; "
        "an in-memory store cannot be shared across the pool's "
        "threads)",
    )
    parser.add_argument("--json", default="BENCH_serving.json")
    parser.add_argument(
        "--min-hit-ratio",
        type=float,
        default=0.0,
        help="gate: minimum warm-store hit ratio over the load run",
    )
    args = parser.parse_args(argv)

    cleanup = None
    if args.store is None:
        import shutil
        import tempfile

        tempdir = tempfile.mkdtemp(prefix="bench_serving_")
        args.store = f"{tempdir}/chains.db"
        cleanup = lambda: shutil.rmtree(tempdir, ignore_errors=True)  # noqa: E731
    try:
        report = asyncio.run(_drive(args))
    finally:
        if cleanup is not None:
            cleanup()
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(
        f"{report['requests']} requests in {report['load_seconds']}s "
        f"({report['throughput_rps']} req/s), "
        f"p50={report['latency_ms']['p50']}ms "
        f"p99={report['latency_ms']['p99']}ms, "
        f"coalesce={report['coalesce_ratio']} "
        f"hits={report['hit_ratio']}"
    )
    print(f"wrote {args.json}")

    failed = []
    if report["failed_requests"]:
        failed.append(
            f"{report['failed_requests']} failed requests "
            f"(samples: {report['failure_samples']})"
        )
    if report["incorrect_chains"]:
        failed.append(
            f"{report['incorrect_chains']} responses failed "
            "independent verification"
        )
    if report["coalesce_ratio"] <= 0.0 and report["hit_ratio"] < 1.0:
        failed.append("coalesce ratio is zero on a skewed load")
    if report["hit_ratio"] < args.min_hit_ratio:
        failed.append(
            f"hit ratio {report['hit_ratio']} below gate "
            f"{args.min_hit_ratio}"
        )
    if failed:
        for line in failed:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
