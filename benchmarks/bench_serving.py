"""Async load benchmark for the ``repro-serve`` synthesis server.

Boots the serving stack (store → persistent scheduler pool →
NPN-coalescing service → HTTP front-end), pre-warms the chain store by
requesting every NPN class representative once, then fires
``--requests`` concurrent requests whose *classes* follow a Zipf
distribution — a few hot classes dominate, exactly the skew that makes
coalescing and the warm store earn their keep.  Each request is a
random orbit member of its class (random input permutation/negations +
output negation), so warm hits still exercise the store's inverse-NPN
rewrite::

    python benchmarks/bench_serving.py --requests 1000 \
        --json BENCH_serving.json
    python benchmarks/bench_serving.py --requests 1000 --procs 2 \
        --max-p99-ms 2000 --json BENCH_serving_procs2.json

Two serving modes:

* in-process (default) — the stack runs inside the bench's event
  loop, zero subprocess noise; and
* ``--procs N`` — a real ``repro-serve --procs N`` process group
  (SO_REUSEPORT workers) is spawned and loaded over TCP; the group's
  merged counters come from ``/metrics/all``, and the bench requires
  a clean exit-0 SIGTERM drain at the end.

The load can carry a priority mix (``--priority-mix
high=0.2,normal=0.6,low=0.2``) and per-request deadlines
(``--deadline-ms`` on a ``--deadline-fraction`` slice) — per-band
client latency is reported, and a 504 on a deadline'd request counts
as *deadline-expired*, not a failure (that is the contract working,
not breaking).

Every response body is **independently re-verified** here with the
packed AllSAT verifier — the bench gates on zero incorrect chains,
zero failed requests, a strictly positive coalesce ratio, and
optionally a minimum warm-store hit ratio (``--min-hit-ratio``) and a
maximum overall p99 (``--max-p99-ms``), both used by CI.
"""

import argparse
import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import time

from repro.core.circuit_sat import verify_chain
from repro.parallel.scheduler import BatchScheduler
from repro.serve.ratelimit import RateLimiter
from repro.serve.server import SynthesisServer
from repro.serve.service import SynthesisService
from repro.store import ChainStore
from repro.store.serialize import chain_from_record
from repro.truthtable.npn import NPNTransform, npn_classes


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _zipf_weights(count, skew):
    return [1.0 / (rank**skew) for rank in range(1, count + 1)]


def _random_orbit_member(rng, table):
    """A uniformly-random-ish member of ``table``'s NPN orbit."""
    n = table.num_vars
    perm = list(range(n))
    rng.shuffle(perm)
    transform = NPNTransform(
        tuple(perm), rng.randrange(1 << n), bool(rng.randrange(2))
    )
    return transform.apply(table)


def _parse_priority_mix(text):
    """``high=0.2,normal=0.6,low=0.2`` → ([bands], [weights])."""
    bands, weights = [], []
    for part in text.split(","):
        name, _, weight = part.partition("=")
        bands.append(name.strip())
        weights.append(float(weight) if weight else 1.0)
    if not bands or all(w <= 0 for w in weights):
        raise ValueError(f"bad --priority-mix {text!r}")
    return bands, weights


async def _post_json(host, port, path, payload, timeout):
    """One HTTP POST on its own connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode()
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, payload_bytes = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload_bytes)


async def _get_json(host, port, path, timeout=30.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: bench\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return json.loads(raw.partition(b"\r\n\r\n")[2])


async def _load(args, host, port):
    """Warm the store, fire the Zipf load, scrape server counters."""
    rng = random.Random(args.seed)
    reps = npn_classes(args.vars)
    bands, band_weights = _parse_priority_mix(args.priority_mix)

    warm_count = max(1, int(round(len(reps) * args.warm_fraction)))
    warm_started = time.perf_counter()
    for rep in reps[:warm_count]:
        status, body = await _post_json(
            host,
            port,
            "/synthesize",
            {"function": rep.to_hex(), "vars": args.vars},
            args.client_timeout,
        )
        if status != 200:
            raise SystemExit(
                f"warmup failed for 0x{rep.to_hex()}: "
                f"{status} {body.get('error', '')}"
            )
    warm_seconds = time.perf_counter() - warm_started
    print(
        f"warmed {warm_count}/{len(reps)} classes "
        f"in {warm_seconds:.2f}s"
    )

    # The load population: Zipf-skewed class choice, random orbit
    # member per request, priority drawn from the mix, deadlines on a
    # slice of the stream.
    weights = _zipf_weights(len(reps), args.skew)
    picks = rng.choices(range(len(reps)), weights, k=args.requests)
    population = []
    for index in picks:
        table = _random_orbit_member(rng, reps[index])
        priority = rng.choices(bands, band_weights)[0]
        deadline = (
            args.deadline_ms
            if args.deadline_ms > 0
            and rng.random() < args.deadline_fraction
            else None
        )
        population.append((table, priority, deadline))

    gate = asyncio.Semaphore(args.concurrency)
    latencies = []
    by_band = {band: [] for band in bands}
    failures = []
    bad_chains = []
    statuses = {}
    expired = [0]

    async def one(table, priority, deadline):
        payload = {
            "function": table.to_hex(),
            "vars": args.vars,
            "max_chains": 1,
            "priority": priority,
        }
        if deadline is not None:
            payload["deadline_ms"] = deadline
        async with gate:
            started = time.perf_counter()
            try:
                status, body = await _post_json(
                    host,
                    port,
                    "/synthesize",
                    payload,
                    args.client_timeout,
                )
            except Exception as exc:
                failures.append(f"{table.to_hex()}: {exc!r}")
                return
            elapsed = time.perf_counter() - started
            latencies.append(elapsed)
            by_band[priority].append(elapsed)
        statuses[status] = statuses.get(status, 0) + 1
        if (
            deadline is not None
            and status == 504
            and body.get("status") == "expired"
        ):
            # The deadline contract working as specified, not a
            # failure: the server refused to burn a worker on an
            # answer the client had already given up on.
            expired[0] += 1
            return
        if status not in (200, 203):
            failures.append(
                f"{table.to_hex()}: HTTP {status} "
                f"{body.get('error', '')}"
            )
            return
        if not body.get("chains"):
            failures.append(f"{table.to_hex()}: empty chain set")
            return
        chain = chain_from_record(body["chains"][0])
        if not verify_chain(chain, table):
            bad_chains.append(table.to_hex())

    load_started = time.perf_counter()
    await asyncio.gather(*(one(*entry) for entry in population))
    load_seconds = time.perf_counter() - load_started

    if args.procs > 0:
        aggregate = await _get_json(host, port, "/metrics/all")
        metrics = aggregate["merged"]
        metrics["per_proc_count"] = aggregate["procs"]
    else:
        metrics = await _get_json(host, port, "/metrics")

    serving = metrics.get("serving", {})
    return {
        "bench": "serving",
        "vars": args.vars,
        "classes": len(reps),
        "warmed_classes": warm_count,
        "requests": args.requests,
        "concurrency": args.concurrency,
        "procs": args.procs,
        "zipf_skew": args.skew,
        "priority_mix": args.priority_mix,
        "deadline_ms": args.deadline_ms,
        "deadline_fraction": args.deadline_fraction,
        "seed": args.seed,
        "warmup_seconds": round(warm_seconds, 3),
        "load_seconds": round(load_seconds, 3),
        "throughput_rps": round(args.requests / load_seconds, 2),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000, 3),
            "p90": round(_percentile(latencies, 0.90) * 1000, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000, 3),
        },
        "latency_by_priority_ms": {
            band: {
                "count": len(values),
                "p50": round(_percentile(values, 0.50) * 1000, 3),
                "p99": round(_percentile(values, 0.99) * 1000, 3),
            }
            for band, values in by_band.items()
            if values
        },
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "deadline_expired": expired[0],
        "failed_requests": len(failures),
        "failure_samples": failures[:10],
        "incorrect_chains": len(bad_chains),
        "coalesce_ratio": serving.get("coalesce_ratio", 0.0),
        "hit_ratio": serving.get("hit_ratio", 0.0),
        "server_metrics": metrics,
    }


async def _drive_inprocess(args):
    store = ChainStore(args.store)
    scheduler = BatchScheduler({}, args.jobs, queue_depth=0).start(
        recycle_after=500
    )
    service = SynthesisService(
        scheduler,
        store=store,
        default_timeout=args.timeout,
        max_backlog=max(args.requests, 256),
    )
    server = SynthesisServer(
        service,
        port=0,
        rate_limiter=RateLimiter(None),
        max_connections=max(args.concurrency * 2, 512),
    )
    await server.start()
    host, port = server.address
    print(f"serving on {host}:{port} (in-process)")
    try:
        return await _load(args, host, port)
    finally:
        await server.shutdown(drain_timeout=30.0)
        scheduler.shutdown(cancel_queued=True)
        store.close()


async def _drive_subprocess(args):
    """Load a real ``repro-serve --procs N`` group over TCP."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--port",
            "0",
            "--procs",
            str(args.procs),
            "--jobs",
            str(args.jobs),
            "--store",
            args.store,
            "--timeout",
            str(args.timeout),
            "--max-connections",
            str(max(args.concurrency * 2, 512)),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        if not banner.startswith("listening on "):
            raise SystemExit(f"bad server banner: {banner!r}")
        host, port = banner.rsplit(" ", 1)[1].rsplit(":", 1)
        print(f"serving on {host}:{port} ({args.procs} processes)")
        report = await _load(args, host, int(port))
    except BaseException:
        proc.kill()
        proc.wait(timeout=10)
        raise
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=120)
    report["server_exit_code"] = rc
    if rc != 0:
        report["failed_requests"] += 1
        report["failure_samples"].append(
            f"server group exited {rc} on SIGTERM"
        )
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Zipf-skewed async load benchmark for repro-serve"
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument(
        "--concurrency",
        type=int,
        default=1000,
        help="concurrent in-flight requests (socket cap)",
    )
    parser.add_argument("--vars", type=int, default=3)
    parser.add_argument(
        "--skew", type=float, default=1.1, help="Zipf exponent"
    )
    parser.add_argument(
        "--warm-fraction",
        type=float,
        default=0.5,
        help="fraction of classes (hottest first) pre-warmed into "
        "the store; the cold tail exercises coalescing",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--procs",
        type=int,
        default=0,
        help="0 = in-process stack; N >= 1 spawns a real "
        "'repro-serve --procs N' group and loads it over TCP",
    )
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--client-timeout", type=float, default=120.0
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--priority-mix",
        default="normal=1.0",
        help="band=weight list, e.g. high=0.2,normal=0.6,low=0.2",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="deadline budget carried by a slice of requests "
        "(0 = no deadlines)",
    )
    parser.add_argument(
        "--deadline-fraction",
        type=float,
        default=0.25,
        help="fraction of requests carrying --deadline-ms",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="chain-store path (default: a fresh temp file per run; "
        "an in-memory store cannot be shared across the pool's "
        "threads)",
    )
    parser.add_argument("--json", default="BENCH_serving.json")
    parser.add_argument(
        "--min-hit-ratio",
        type=float,
        default=0.0,
        help="gate: minimum warm-store hit ratio over the load run",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=0.0,
        help="gate: maximum client-side p99 latency (0 = no gate)",
    )
    args = parser.parse_args(argv)

    cleanup = None
    if args.store is None:
        import shutil
        import tempfile

        tempdir = tempfile.mkdtemp(prefix="bench_serving_")
        args.store = f"{tempdir}/chains.db"
        cleanup = lambda: shutil.rmtree(tempdir, ignore_errors=True)  # noqa: E731
    try:
        if args.procs > 0:
            report = asyncio.run(_drive_subprocess(args))
        else:
            report = asyncio.run(_drive_inprocess(args))
    finally:
        if cleanup is not None:
            cleanup()
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(
        f"{report['requests']} requests in {report['load_seconds']}s "
        f"({report['throughput_rps']} req/s), "
        f"p50={report['latency_ms']['p50']}ms "
        f"p99={report['latency_ms']['p99']}ms, "
        f"coalesce={report['coalesce_ratio']} "
        f"hits={report['hit_ratio']} "
        f"expired={report['deadline_expired']}"
    )
    for band, window in sorted(
        report["latency_by_priority_ms"].items()
    ):
        print(
            f"  {band}: n={window['count']} "
            f"p50={window['p50']}ms p99={window['p99']}ms"
        )
    print(f"wrote {args.json}")

    failed = []
    if report["failed_requests"]:
        failed.append(
            f"{report['failed_requests']} failed requests "
            f"(samples: {report['failure_samples']})"
        )
    if report["incorrect_chains"]:
        failed.append(
            f"{report['incorrect_chains']} responses failed "
            "independent verification"
        )
    if report["coalesce_ratio"] <= 0.0 and report["hit_ratio"] < 1.0:
        failed.append("coalesce ratio is zero on a skewed load")
    if report["hit_ratio"] < args.min_hit_ratio:
        failed.append(
            f"hit ratio {report['hit_ratio']} below gate "
            f"{args.min_hit_ratio}"
        )
    if (
        args.max_p99_ms > 0
        and report["latency_ms"]["p99"] > args.max_p99_ms
    ):
        failed.append(
            f"p99 {report['latency_ms']['p99']}ms above gate "
            f"{args.max_p99_ms}ms"
        )
    if failed:
        for line in failed:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
