"""Racing vs single-engine baseline on an NPN4 subset.

Runs the same suite twice through :func:`repro.bench.run_suite` — once
with the single-engine fault-tolerant executor (the baseline), once
with ``race=True`` (concurrent engine lanes, first verified exact
answer wins) — and writes a JSON report with the solve rates, the
p50/p99 per-instance wall clocks, and the loser-cancellation latency
distribution::

    python benchmarks/bench_racing.py --count 10 \
        --json BENCH_racing_npn4.json

The run **gates** on solve rate: racing must solve at least as many
instances as the baseline (it races a superset of the baseline's
engines, so losing instances would mean the cancellation or
degradation machinery ate a result).  CI runs this on a small subset
and uploads the JSON as an artifact.
"""

import argparse
import json
import sys
import time

from repro.bench.runner import Algorithm, run_suite
from repro.bench.suites import get_suite
from repro.engine import run_engine
from repro.runtime.racing import DEFAULT_RACE_ENGINES, RacingExecutor


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _suite_metrics(report):
    runtimes = [o.runtime for o in report.outcomes]
    return {
        "solved": report.num_ok,
        "timeouts": report.num_timeouts,
        "degraded": report.num_degraded,
        "instances": len(report.outcomes),
        "p50_seconds": round(_percentile(runtimes, 0.50), 4),
        "p99_seconds": round(_percentile(runtimes, 0.99), 4),
    }


def _baseline_algorithm(engine):
    from functools import partial

    return Algorithm(
        engine.upper(),
        partial(run_engine, engine),
        engines=(engine,),
    )


def _cancellation_latencies(functions, timeout):
    """Direct racing runs that surface per-loser cancellation times."""
    executor = RacingExecutor(DEFAULT_RACE_ENGINES)
    latencies = []
    for function in functions:
        executor.run(function, timeout)
        latencies.extend(
            c.seconds for c in executor.last_cancellations
        )
    return latencies


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark engine racing against a single engine."
    )
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument(
        "--engine",
        default="fen",
        help="single-engine baseline lane (default: fen)",
    )
    parser.add_argument(
        "--json", type=str, default="BENCH_racing_npn4.json"
    )
    args = parser.parse_args(argv)

    functions = get_suite("npn4", args.count)
    baseline_algo = _baseline_algorithm(args.engine)
    race_algo = Algorithm(
        "RACE",
        baseline_algo.run,
        engines=tuple(
            dict.fromkeys((args.engine,) + DEFAULT_RACE_ENGINES)
        ),
    )

    print(
        f"npn4[{args.count}]: baseline {args.engine} vs race "
        f"{race_algo.engines}",
        file=sys.stderr,
    )
    started = time.perf_counter()
    baseline = run_suite(
        "npn4", functions, [baseline_algo], args.timeout, isolate=True
    )[0]
    baseline_wall = time.perf_counter() - started

    started = time.perf_counter()
    raced = run_suite(
        "npn4", functions, [race_algo], args.timeout, race=True
    )[0]
    race_wall = time.perf_counter() - started

    latencies = _cancellation_latencies(functions[:5], args.timeout)
    report = {
        "benchmark": "racing_npn4",
        "suite": "npn4",
        "count": args.count,
        "timeout": args.timeout,
        "baseline_engine": args.engine,
        "race_engines": list(race_algo.engines),
        "baseline": _suite_metrics(baseline),
        "race": _suite_metrics(raced),
        "wall_seconds": {
            "baseline": round(baseline_wall, 4),
            "race": round(race_wall, 4),
        },
        "cancellation": {
            "count": len(latencies),
            "p50_seconds": round(_percentile(latencies, 0.50), 6),
            "p99_seconds": round(_percentile(latencies, 0.99), 6),
            "max_seconds": round(max(latencies), 6) if latencies else 0.0,
        },
    }
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)
    print(
        f"baseline: {report['baseline']['solved']}/"
        f"{report['baseline']['instances']} solved "
        f"(p50 {report['baseline']['p50_seconds']}s)  "
        f"race: {report['race']['solved']}/"
        f"{report['race']['instances']} solved "
        f"(p50 {report['race']['p50_seconds']}s, "
        f"{report['race']['degraded']} degraded)  "
        f"cancellation p99 {report['cancellation']['p99_seconds']}s",
        file=sys.stderr,
    )
    if report["race"]["solved"] < report["baseline"]["solved"]:
        print(
            "error: racing solved fewer instances than the "
            "single-engine baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
