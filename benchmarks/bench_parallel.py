"""jobs=1 vs jobs=N wall-clock comparison on an NPN4 subset.

Runs the same suite twice through :func:`repro.bench.run_suite` — once
sequentially, once through the parallel batch scheduler — with
per-instance process isolation in both runs so the only variable is
the scheduling.  Asserts that the aggregate counters (solved/timeout
counts, gate counts, solution counts) are identical across the two
runs, and writes a JSON report with both wall clocks and the speedup::

    python benchmarks/bench_parallel.py --jobs 2 --count 10 \
        --json BENCH_parallel_npn4.json

CI runs this with ``--jobs 2`` and uploads the JSON as an artifact;
``--min-speedup`` turns an insufficient speedup into a nonzero exit
(left off by default — single-core containers cannot speed up).
"""

import argparse
import json
import sys
import time

from repro.bench.runner import default_algorithms, run_suite
from repro.bench.suites import get_suite


def _fingerprint(reports):
    """Order-stable aggregate counters for the determinism check."""
    return [
        {
            "algorithm": r.algorithm,
            "solved": r.num_ok,
            "timeouts": r.num_timeouts,
            "gates": [o.num_gates for o in r.outcomes],
            "solutions": [o.num_solutions for o in r.outcomes],
        }
        for r in reports
    ]


def _timed_run(functions, algorithms, timeout, jobs):
    started = time.perf_counter()
    reports = run_suite(
        "npn4",
        functions,
        algorithms,
        timeout,
        jobs=jobs,
        isolate=True,
    )
    wall = time.perf_counter() - started
    return wall, reports


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the parallel batch scheduler."
    )
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument(
        "--algorithms", nargs="+", default=["FEN", "STP"]
    )
    parser.add_argument(
        "--json", type=str, default="BENCH_parallel_npn4.json"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless jobs=N is at least this much faster",
    )
    args = parser.parse_args(argv)

    functions = get_suite("npn4", args.count)
    wanted = {name.upper() for name in args.algorithms}
    algorithms = [
        a for a in default_algorithms(max_solutions=16) if a.name in wanted
    ]
    if not algorithms:
        parser.error(f"no known algorithms among {sorted(wanted)}")

    print(
        f"npn4[{args.count}] x {[a.name for a in algorithms]}, "
        f"jobs=1 then jobs={args.jobs}",
        file=sys.stderr,
    )
    sequential_wall, sequential = _timed_run(
        functions, algorithms, args.timeout, jobs=1
    )
    parallel_wall, parallel = _timed_run(
        functions, algorithms, args.timeout, jobs=args.jobs
    )

    identical = _fingerprint(sequential) == _fingerprint(parallel)
    speedup = sequential_wall / parallel_wall if parallel_wall else 0.0
    report = {
        "benchmark": "parallel_npn4",
        "suite": "npn4",
        "count": args.count,
        "algorithms": [a.name for a in algorithms],
        "timeout": args.timeout,
        "jobs": args.jobs,
        "wall_seconds": {
            "jobs_1": round(sequential_wall, 4),
            f"jobs_{args.jobs}": round(parallel_wall, 4),
        },
        "speedup": round(speedup, 4),
        "identical_counters": identical,
        "counters": _fingerprint(parallel),
    }
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)
    print(
        f"jobs=1: {sequential_wall:.2f}s  jobs={args.jobs}: "
        f"{parallel_wall:.2f}s  speedup: {speedup:.2f}x  "
        f"counters identical: {identical}",
        file=sys.stderr,
    )
    if not identical:
        print("error: aggregate counters diverged", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: speedup {speedup:.2f}x below "
            f"--min-speedup {args.min_speedup}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
