"""Fig. 2: Boolean fence families before and after the paper's pruning.

Regenerates the fence counts of ``F_k`` (Fig. 2a is the unpruned
family, Fig. 2b the single-top-node capacity-pruned family used by the
synthesizer) and benchmarks the enumeration itself.
"""

import pytest

from repro.topology import all_fences, valid_fences


def test_fig2_f3_families(benchmark):
    def enumerate_families():
        return all_fences(3), valid_fences(3)

    unpruned, pruned = benchmark(enumerate_families)
    # Fig. 2a: the four compositions of 3.
    assert sorted(unpruned) == [(1, 1, 1), (1, 2), (2, 1), (3,)]
    # Fig. 2b: pruning keeps single-output, 2-input-consumable fences.
    assert sorted(pruned) == [(1, 1, 1), (2, 1)]


@pytest.mark.parametrize("k", [4, 6, 8, 10])
def test_fig2_fence_scaling(benchmark, k):
    counts = benchmark(lambda: (len(all_fences(k)), len(valid_fences(k))))
    total, pruned = counts
    assert total == 2 ** (k - 1)  # compositions of k
    assert 0 < pruned < total
