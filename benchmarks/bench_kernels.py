"""Old-vs-new kernel benchmark: packed bit-parallel kernels against the
original pure-Python implementations (``repro.kernels.reference``).

Produces ``BENCH_kernels_npn4.json`` with three sections:

* ``chain_allsat`` — the headline microbenchmark: tuple-cube AllSAT vs
  the packed two-plane solver on random chains of several shapes, plus
  the aggregate speedup the CI gate checks;
* ``micro`` — onset expansion and exact NPN canonicalization old/new;
* ``npn4`` — end-to-end pipeline wall-clock over an NPN4 subset at
  ``jobs=1``, with the folded per-kernel stats, and an old-vs-new
  ``verify_chain`` agreement check over every solved chain.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --out BENCH_kernels_npn4.json --min-allsat-speedup 1.0

``--min-allsat-speedup`` turns the report into a regression gate: the
process exits non-zero when the geometric-mean AllSAT speedup falls
below the threshold (CI pins 1.0 — packed must never be slower).
``--max-npn4-wall`` gates the end-to-end section the same way: CI pins
it at half the recorded pre-batching seed wall (40.0s for the 8-class
subset → 20.0s), so losing the batched-factorization win fails the
build.  ``--histogram-out`` additionally writes the per-kernel
call-count histogram of the NPN4 run as its own artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import time

from repro.bench.suites import get_suite
from repro.chain import BooleanChain
from repro.core import SynthesisSpec, chain_all_sat, run_pipeline, verify_chain
from repro.core.circuit_sat import cubes_to_onset
from repro.kernels import KERNEL_STATS, npn_minimum, packed_all_sat
from repro.kernels.reference import (
    chain_all_sat_ref,
    cubes_to_onset_ref,
    npn_apply_ref,
    verify_chain_ref,
)
from repro.runtime.errors import BudgetExceeded


def random_chain(rnd, num_inputs: int, num_gates: int) -> BooleanChain:
    """A random chain (same construction as the property-test helper)."""
    chain = BooleanChain(num_inputs)
    for _ in range(num_gates):
        hi = chain.num_signals
        a = rnd.randrange(hi)
        b = rnd.randrange(hi)
        while b == a:
            b = rnd.randrange(hi)
        chain.add_gate(rnd.randrange(16), (a, b))
    chain.set_output(chain.num_signals - 1, bool(rnd.getrandbits(1)))
    return chain


#: (num_inputs, num_gates, min #solutions, #chains, #repeats) per
#: microbenchmark shape.  The min-solution filter rejects chains whose
#: output constant-collapses — their AllSAT is a dictionary lookup and
#: measures nothing.
ALLSAT_SHAPES = [
    (4, 7, 4, 15, 5),
    (5, 9, 8, 15, 4),
    (6, 14, 32, 10, 4),
    (7, 14, 64, 10, 4),
]


def _time(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _solution_heavy_chains(n, gates, min_solutions, count):
    rnd = random.Random(n * 100 + gates)
    chains = []
    while len(chains) < count:
        chain = random_chain(rnd, num_inputs=n, num_gates=gates)
        if len(chain_all_sat_ref(chain)) >= min_solutions:
            chains.append(chain)
    return chains


def bench_chain_allsat() -> list[dict]:
    """Tuple-cube AllSAT vs the packed solver, per chain shape.

    ``new_s`` times :func:`repro.kernels.packed_all_sat` — the entry
    the synthesis core dispatches through (``verify_chain`` never
    round-trips to tuples).  ``tuple_api_s`` times the compatibility
    adapter :func:`repro.core.chain_all_sat`, whose unpack step gives
    back roughly half the win.
    """
    rows = []
    for n, gates, min_solutions, count, repeats in ALLSAT_SHAPES:
        chains = _solution_heavy_chains(n, gates, min_solutions, count)

        def run_old():
            for chain in chains:
                chain_all_sat_ref(chain)

        def run_new():
            for chain in chains:
                packed_all_sat(chain)

        def run_tuple_api():
            for chain in chains:
                chain_all_sat(chain)

        # Equivalence before timing — a fast wrong kernel is worthless.
        for chain in chains:
            assert chain_all_sat(chain) == chain_all_sat_ref(chain)
        old_s = _time(run_old, repeats)
        new_s = _time(run_new, repeats)
        tuple_s = _time(run_tuple_api, repeats)
        rows.append(
            {
                "shape": f"{n}in{gates}g",
                "chains": count,
                "old_s": round(old_s, 6),
                "new_s": round(new_s, 6),
                "tuple_api_s": round(tuple_s, 6),
                "speedup": round(old_s / new_s, 3),
            }
        )
    return rows


def bench_verify() -> list[dict]:
    """End-to-end verification (AllSAT + onset expansion) old vs new."""
    rows = []
    for n, gates, min_solutions, count, repeats in ALLSAT_SHAPES:
        pairs = [
            (chain, chain.simulate_output())
            for chain in _solution_heavy_chains(
                n, gates, min_solutions, count
            )
        ]

        def run_old():
            for chain, function in pairs:
                verify_chain_ref(chain, function)

        def run_new():
            for chain, function in pairs:
                verify_chain(chain, function)

        old_s = _time(run_old, repeats)
        new_s = _time(run_new, repeats)
        rows.append(
            {
                "shape": f"{n}in{gates}g",
                "chains": count,
                "old_s": round(old_s, 6),
                "new_s": round(new_s, 6),
                "speedup": round(old_s / new_s, 3),
            }
        )
    return rows


def bench_micro() -> dict:
    rnd = random.Random(42)
    n = 8
    cube_sets = [
        [
            tuple(rnd.choice((None, 0, 1)) for _ in range(n))
            for _ in range(16)
        ]
        for _ in range(50)
    ]
    for cubes in cube_sets:
        assert cubes_to_onset(cubes, n) == cubes_to_onset_ref(cubes, n)
    onset_old = _time(
        lambda: [cubes_to_onset_ref(c, n) for c in cube_sets], 5
    )
    onset_new = _time(
        lambda: [cubes_to_onset(c, n) for c in cube_sets], 5
    )

    import itertools

    tables = [rnd.getrandbits(16) for _ in range(20)]
    transforms = [
        (perm, flips, out)
        for perm in itertools.permutations(range(4))
        for flips in range(16)
        for out in (False, True)
    ]

    def npn_old():
        for bits in tables:
            min(
                npn_apply_ref(bits, 4, perm, flips, out)
                for perm, flips, out in transforms
            )

    def npn_new():
        for bits in tables:
            npn_minimum(bits, 4)

    npn_old_s = _time(npn_old, 3)
    npn_new_s = _time(npn_new, 3)
    return {
        "cubes_to_onset": {
            "old_s": round(onset_old, 6),
            "new_s": round(onset_new, 6),
            "speedup": round(onset_old / onset_new, 3),
        },
        "npn_canonical": {
            "old_s": round(npn_old_s, 6),
            "new_s": round(npn_new_s, 6),
            "speedup": round(npn_old_s / npn_new_s, 3),
        },
    }


def bench_npn4(count: int, timeout: float) -> dict:
    functions = get_suite("npn4", count)
    snap = KERNEL_STATS.snapshot()
    start = time.perf_counter()
    solved = 0
    verify_checked = 0
    for function in functions:
        try:
            result = run_pipeline(
                SynthesisSpec(function=function, timeout=timeout)
            )
        except BudgetExceeded:
            continue  # counts as unsolved, like a runner timeout
        if result.chains:
            solved += 1
        for chain in result.chains[:4]:
            assert verify_chain(chain, function)
            if chain.num_gates > 0:
                # Old and new verification must agree chain-by-chain.
                # (Trivial constant chains are excluded: the old tuple
                # solver mishandled constant outputs — a bug the packed
                # solver fixes, see repro.kernels.allsat.)
                assert verify_chain_ref(chain, function)
                verify_checked += 1
    wall_s = time.perf_counter() - start
    calls, seconds = KERNEL_STATS.since(snap)
    return {
        "functions": len(functions),
        "solved": solved,
        "verify_chains_checked": verify_checked,
        "wall_s": round(wall_s, 3),
        "kernel_calls": calls,
        "kernel_seconds": {k: round(v, 6) for k, v in seconds.items()},
    }


def kernel_histogram(npn4: dict) -> dict:
    """Per-kernel call-count histogram of the NPN4 run, largest first.

    ``fact_quartering`` counts *scalar* quartering invocations — the
    pre-batching hot spot — while ``fact_quartering_batch`` counts the
    demands that went through the stacked kernel instead; their ratio
    is the headline of the batching rework.
    """
    calls = npn4.get("kernel_calls", {})
    seconds = npn4.get("kernel_seconds", {})
    ranked = sorted(calls.items(), key=lambda kv: -kv[1])
    return {
        "benchmark": "kernel_call_histogram",
        "npn4_functions": npn4.get("functions"),
        "npn4_wall_s": npn4.get("wall_s"),
        "kernels": [
            {
                "kernel": name,
                "calls": count,
                "seconds": round(seconds.get(name, 0.0), 6),
            }
            for name, count in ranked
        ],
    }


def print_histogram(histogram: dict, width: int = 40) -> None:
    rows = histogram["kernels"]
    if not rows:
        return
    top = rows[0]["calls"] or 1
    print("kernel call histogram (npn4 subset):")
    for row in rows:
        bar = "#" * max(1, round(width * row["calls"] / top))
        print(
            f"  {row['kernel']:<24} {row['calls']:>10,} "
            f"{row['seconds']:>9.3f}s {bar}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_kernels_npn4.json", help="output JSON path"
    )
    parser.add_argument(
        "--npn4-count",
        type=int,
        default=20,
        help="NPN4 subset size for the end-to-end section",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-instance synthesis timeout (s)",
    )
    parser.add_argument(
        "--min-allsat-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when the geometric-mean AllSAT speedup "
        "drops below this value",
    )
    parser.add_argument(
        "--max-npn4-wall",
        type=float,
        default=None,
        help="fail (exit 1) when the end-to-end NPN4 wall clock "
        "exceeds this many seconds",
    )
    parser.add_argument(
        "--histogram-out",
        default=None,
        help="also write the per-kernel call-count histogram of the "
        "NPN4 run to this JSON path",
    )
    args = parser.parse_args(argv)

    allsat_rows = bench_chain_allsat()
    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in allsat_rows)
        / len(allsat_rows)
    )
    report = {
        "benchmark": "kernels_npn4",
        "chain_allsat": allsat_rows,
        "chain_allsat_speedup_geomean": round(geomean, 3),
        "chain_allsat_speedup_min": min(
            r["speedup"] for r in allsat_rows
        ),
        "verify_chain": bench_verify(),
        "micro": bench_micro(),
        "npn4": bench_npn4(args.npn4_count, args.timeout),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    for row in allsat_rows:
        print(
            f"chain_allsat {row['shape']}: {row['old_s']:.4f}s -> "
            f"{row['new_s']:.4f}s ({row['speedup']:.2f}x)"
        )
    print(f"chain_allsat geomean speedup: {geomean:.2f}x")
    for row in report["verify_chain"]:
        print(
            f"verify_chain {row['shape']}: {row['old_s']:.4f}s -> "
            f"{row['new_s']:.4f}s ({row['speedup']:.2f}x)"
        )
    micro = report["micro"]
    for name, entry in micro.items():
        print(
            f"{name}: {entry['old_s']:.4f}s -> {entry['new_s']:.4f}s "
            f"({entry['speedup']:.2f}x)"
        )
    npn4 = report["npn4"]
    print(
        f"npn4 subset: {npn4['solved']}/{npn4['functions']} solved in "
        f"{npn4['wall_s']:.2f}s; verify agreement on "
        f"{npn4['verify_chains_checked']} chains"
    )
    histogram = kernel_histogram(npn4)
    print_histogram(histogram)
    if args.histogram_out:
        with open(args.histogram_out, "w") as handle:
            json.dump(histogram, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.histogram_out}")
    print(f"wrote {args.out}")

    failed = False
    if (
        args.min_allsat_speedup is not None
        and geomean < args.min_allsat_speedup
    ):
        print(
            f"FAIL: AllSAT geomean speedup {geomean:.2f}x is below the "
            f"required {args.min_allsat_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if (
        args.max_npn4_wall is not None
        and npn4["wall_s"] > args.max_npn4_wall
    ):
        print(
            f"FAIL: NPN4 wall clock {npn4['wall_s']:.2f}s exceeds the "
            f"allowed {args.max_npn4_wall:.2f}s",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
