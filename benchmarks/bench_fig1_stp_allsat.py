"""Fig. 1: the STP AllSAT solving tree (Section II-A, Example 4).

Benchmarks the canonical-form construction and column-extraction
solver on the liar puzzle and on random formulas, checking the
paper's unique solution (only ``b`` is honest).
"""

import random

import pytest

from repro.stp import STPSolver, all_sat, parse
from repro.truthtable import TruthTable


LIAR_PUZZLE = "(a <-> ~b) & (b <-> ~c) & (c <-> (~a & ~b))"


def test_fig1_liar_puzzle_allsat(benchmark):
    expr = parse(LIAR_PUZZLE)

    def solve():
        return all_sat(expr)

    solutions = benchmark(solve)
    assert solutions == [(0, 1, 0)]  # a liar, b honest, c liar


def test_fig1_canonical_form(benchmark):
    expr = parse(LIAR_PUZZLE)
    matrix = benchmark(lambda: expr.canonical_form())
    assert matrix.shape == (2, 8)
    assert int(matrix[0].sum()) == 1  # exactly one satisfying column


@pytest.mark.parametrize("num_vars", [6, 8, 10])
def test_fig1_random_allsat(benchmark, num_vars):
    rng = random.Random(num_vars)
    table = TruthTable(rng.getrandbits(1 << num_vars), num_vars)

    def solve():
        return STPSolver(table).all_solutions()

    solutions = benchmark(solve)
    assert len(solutions) == table.count_ones()
